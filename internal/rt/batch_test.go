package rt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
)

// Differential tests: the batched kernels must be observationally identical
// to the scalar entry points — byte-identical table snapshots (the counting
// sort preserves per-shard insertion order), identical match iteration, and
// identical memory-budget behaviour (the cumulative charges are equal, so a
// budget that fails one path fails the other).

// deriveKeys expands fuzz bytes into a key set: key i is a 1/4/8/12-byte
// little-endian encoding of a value drawn from a small domain (forcing
// duplicates and shard collisions).
func deriveKeys(data []byte, n int, domain uint64, width int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		v := uint64(17)
		if len(data) > 0 {
			v = uint64(data[i%len(data)])<<8 | uint64(data[(i*7+3)%len(data)])
		}
		v = (v + uint64(i)*2654435761) % domain
		b := make([]byte, width)
		switch width {
		case 1:
			b[0] = byte(v)
		case 4:
			binary.LittleEndian.PutUint32(b, uint32(v))
		default:
			binary.LittleEndian.PutUint64(b, v)
			for w := 8; w < width; w++ {
				b[w] = byte(v >> (w % 8))
			}
		}
		keys[i] = b
	}
	return keys
}

func snapshotsEqual(t *testing.T, name string, a, b *AggTable) {
	t.Helper()
	sa, sb := a.Snapshot(), b.Snapshot()
	if len(sa) != len(sb) {
		t.Fatalf("%s: scalar has %d groups, batched %d", name, len(sa), len(sb))
	}
	for i := range sa {
		if !bytes.Equal(sa[i], sb[i]) {
			t.Fatalf("%s: group row %d differs:\n scalar  %x\n batched %x", name, i, sa[i], sb[i])
		}
	}
}

// runAggBoth builds one table scalar and one batched from the same key
// stream (chunked), returning whether each path hit the memory budget.
func runAggBoth(keys [][]byte, init []byte, shards, chunk int, budgetBytes int64) (scalar, batched *AggTable, sErr, bErr error) {
	run := func(batch bool) (tbl *AggTable, err error) {
		defer func() {
			if rec := recover(); rec != nil {
				if be, ok := rec.(*BudgetExceeded); ok {
					err = be
					return
				}
				panic(rec)
			}
		}()
		tbl = NewAggTable(init, shards)
		if budgetBytes > 0 {
			tbl.SetBudget(NewMemBudget(budgetBytes))
		}
		var sc BatchScratch
		var hashes []uint64
		dst := make([][]byte, chunk)
		for at := 0; at < len(keys); at += chunk {
			ck := keys[at:min(at+chunk, len(keys))]
			if batch {
				hashes = HashBatch(ck, hashes)
				tbl.FindOrCreateBatch(ck, nil, hashes, dst[:len(ck)], &sc)
			} else {
				for _, k := range ck {
					tbl.FindOrCreate(k, Hash64(k))
				}
			}
		}
		return tbl, nil
	}
	scalar, sErr = run(false)
	batched, bErr = run(true)
	return
}

func FuzzAggBatchDifferential(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint16(64), uint8(4), uint8(8), false)
	f.Add([]byte{0xff, 0x10}, uint16(1000), uint8(1), uint8(4), false)
	f.Add([]byte{7}, uint16(300), uint8(16), uint8(1), false)
	f.Add([]byte{9, 9, 9, 1}, uint16(2048), uint8(2), uint8(12), true)
	f.Add([]byte{}, uint16(100), uint8(8), uint8(8), true)
	f.Fuzz(func(t *testing.T, data []byte, nKeys uint16, shardsRaw, widthRaw uint8, budgeted bool) {
		n := int(nKeys)%4096 + 1
		shards := 1 << (int(shardsRaw) % 6) // 1..32
		width := []int{1, 4, 8, 12}[int(widthRaw)%4]
		domain := uint64(n)/3 + 1
		keys := deriveKeys(data, n, domain, width)
		init := []byte{0, 0, 0, 0, 0, 0, 0, 0}
		var budget int64
		if budgeted {
			// Tight enough to trip mid-stream on larger runs.
			budget = int64(n) * 8
		}
		scalar, batched, sErr, bErr := runAggBoth(keys, init, shards, 256, budget)
		if (sErr == nil) != (bErr == nil) {
			t.Fatalf("budget divergence: scalar err=%v batched err=%v", sErr, bErr)
		}
		if sErr != nil {
			return // both tripped the budget; partial contents are unspecified
		}
		snapshotsEqual(t, fmt.Sprintf("n=%d shards=%d width=%d", n, shards, width), scalar, batched)
	})
}

// FuzzAggBatchSeedsAndLocal drives the seeded variant (collation-style
// creation extras) plus the thread-local pre-aggregation table, checking the
// merged outcome against a scalar build with per-key payload folds.
func FuzzAggBatchSeedsAndLocal(f *testing.F) {
	f.Add([]byte{5, 1}, uint16(128), uint8(2))
	f.Add([]byte{200, 3, 77}, uint16(900), uint8(5))
	f.Add([]byte{}, uint16(64), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, nKeys uint16, shardsRaw uint8) {
		n := int(nKeys)%2048 + 1
		shards := 1 << (int(shardsRaw) % 5)
		keys := deriveKeys(data, n, uint64(n)/4+1, 8)
		st := &AggTableState{
			Init:   make([]byte, 8),
			Shards: shards,
			Merge:  []AggMerge{{Op: MergeSumI64, Off: 0}},
		}
		seed := []byte{0xAB, 0xCD} // creation extra carried beyond Init

		// Scalar reference: count occurrences per key directly.
		ref := st.NewInstance()
		for _, k := range keys {
			row := ref.FindOrCreateSeed(k, Hash64(k), seed)
			off := RowPayloadOff(row)
			PutI64(row, off, GetI64(row, off)+1)
		}

		// Local+batched path: local table absorbs, flushes every 256 keys.
		backing := st.NewInstance()
		loc := NewLocalAggTable(st, backing)
		var sc BatchScratch
		var hashes []uint64
		for at := 0; at < len(keys); at += 256 {
			ck := keys[at:min(at+256, len(keys))]
			hashes = HashBatch(ck, hashes)
			var pendK [][]byte
			var pendH []uint64
			for i, k := range ck {
				row, _, ok := loc.FindOrCreate(k, hashes[i], seed)
				if !ok {
					pendK = append(pendK, k)
					pendH = append(pendH, hashes[i])
					continue
				}
				off := RowPayloadOff(row)
				PutI64(row, off, GetI64(row, off)+1)
			}
			if len(pendK) > 0 {
				pendD := make([][]byte, len(pendK))
				seeds := make([][]byte, len(pendK))
				for i := range seeds {
					seeds[i] = seed
				}
				backing.FindOrCreateBatch(pendK, seeds, pendH, pendD, &sc)
				for _, row := range pendD {
					off := RowPayloadOff(row)
					PutI64(row, off, GetI64(row, off)+1)
				}
			}
			loc.Flush()
		}
		loc.Flush()

		if ref.Groups() != backing.Groups() {
			t.Fatalf("groups: ref=%d local+batched=%d", ref.Groups(), backing.Groups())
		}
		// Compare per-key counts and seeds (order differs: local flush order
		// is local-creation order, not stream order).
		want := map[string]int64{}
		for _, row := range ref.Snapshot() {
			want[string(RowKey(row))] = GetI64(row, RowPayloadOff(row))
		}
		for _, row := range backing.Snapshot() {
			k := string(RowKey(row))
			got := GetI64(row, RowPayloadOff(row))
			if want[k] != got {
				t.Fatalf("key %x: count ref=%d got=%d", k, want[k], got)
			}
			po := RowPayloadOff(row)
			if !bytes.Equal(row[po+8:], seed) {
				t.Fatalf("key %x: seed lost: %x", k, row[po+8:])
			}
		}
	})
}

func FuzzJoinBatchDifferential(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint16(64), uint8(4), uint16(32))
	f.Add([]byte{0x42}, uint16(777), uint8(1), uint16(500))
	f.Add([]byte{}, uint16(256), uint8(16), uint16(1))
	f.Add([]byte{8, 8, 8}, uint16(1500), uint8(3), uint16(2000))
	f.Fuzz(func(t *testing.T, data []byte, nBuild uint16, shardsRaw uint8, nProbe uint16) {
		nb := int(nBuild)%2048 + 1
		np := int(nProbe)%2048 + 1
		shards := 1 << (int(shardsRaw) % 6)
		buildKeys := deriveKeys(data, nb, uint64(nb)/2+1, 8)
		// Probe keys from a wider domain so many miss (exercising the filter).
		probeKeys := deriveKeys(data, np, uint64(nb)*4+7, 8)

		build := func(batch bool) *JoinTable {
			tbl := NewJoinTable(shards)
			var sc BatchScratch
			var hashes []uint64
			payloads := make([][]byte, 0, 256)
			for at := 0; at < len(buildKeys); at += 256 {
				ck := buildKeys[at:min(at+256, len(buildKeys))]
				payloads = payloads[:0]
				for i := range ck {
					payloads = append(payloads, []byte{byte(at + i)})
				}
				if batch {
					hashes = HashBatch(ck, hashes)
					tbl.InsertBatch(ck, payloads, hashes, &sc)
				} else {
					for i, k := range ck {
						tbl.Insert(k, payloads[i], Hash64(k))
					}
				}
			}
			tbl.Seal()
			return tbl
		}
		scalar := build(false)
		batched := build(true)

		if scalar.Rows() != batched.Rows() {
			t.Fatalf("rows: scalar=%d batched=%d", scalar.Rows(), batched.Rows())
		}
		probeHashes := HashBatch(probeKeys, nil)
		sel, skips := batched.LookupBatch(probeHashes, nil)
		if len(sel)+skips != np {
			t.Fatalf("filter partition: %d pass + %d skip != %d probes", len(sel), skips, np)
		}
		passSet := make(map[int]bool, len(sel))
		for _, i := range sel {
			passSet[int(i)] = true
		}
		for i, k := range probeKeys {
			h := probeHashes[i]
			var sMatches, bMatches [][]byte
			sit := scalar.Lookup(k, h)
			for r := sit.Next(); r != nil; r = sit.Next() {
				sMatches = append(sMatches, r)
			}
			bit := batched.Lookup(k, h)
			for r := bit.Next(); r != nil; r = bit.Next() {
				bMatches = append(bMatches, r)
			}
			if len(sMatches) != len(bMatches) {
				t.Fatalf("probe %d: scalar %d matches, batched %d", i, len(sMatches), len(bMatches))
			}
			for j := range sMatches {
				if !bytes.Equal(sMatches[j], bMatches[j]) {
					t.Fatalf("probe %d match %d differs", i, j)
				}
			}
			// No false negatives: a real match must pass the filter; and the
			// filter must agree with MayContain.
			if len(sMatches) > 0 && !passSet[i] {
				t.Fatalf("probe %d: bloom filter dropped a real match", i)
			}
			if passSet[i] != batched.MayContain(h) {
				t.Fatalf("probe %d: LookupBatch and MayContain disagree", i)
			}
			if scalar.Exists(k, h) != batched.Exists(k, h) {
				t.Fatalf("probe %d: Exists divergence", i)
			}
			if scalar.Touch(k, h) != batched.Touch(k, h) {
				t.Fatalf("probe %d: Touch divergence", i)
			}
		}
	})
}

// TestAggBatchBudgetMidBatch pins the mid-batch budget behaviour: a budget
// that trips inside FindOrCreateBatch must leave the shard locks released
// (subsequent scalar calls on other shards still work) and fail the scalar
// path at the same cumulative total.
func TestAggBatchBudgetMidBatch(t *testing.T) {
	keys := deriveKeys([]byte{3, 1, 4}, 1024, 1024, 8) // all distinct-ish
	_, _, sErr, bErr := runAggBoth(keys, make([]byte, 16), 8, 128, 4096)
	if sErr == nil || bErr == nil {
		t.Fatalf("want both paths to trip the budget, scalar=%v batched=%v", sErr, bErr)
	}
	// After a batched budget panic the table must not be wedged: locks were
	// released by the deferred unlocks.
	tbl := NewAggTable(make([]byte, 16), 8)
	func() {
		defer func() { recover() }()
		tbl.SetBudget(NewMemBudget(600))
		var sc BatchScratch
		hashes := HashBatch(keys, nil)
		dst := make([][]byte, len(keys))
		tbl.FindOrCreateBatch(keys, nil, hashes, dst, &sc)
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		k := []byte{9, 9, 9, 9, 9, 9, 9, 9}
		tbl2 := NewAggTable(make([]byte, 16), 8) // fresh table, shared nothing
		tbl2.FindOrCreate(k, Hash64(k))
		// And the tripped table itself must not deadlock on reads.
		_ = tbl.Groups()
	}()
	<-done
}

// TestLocalAggAdaptiveDisable checks the hit-ratio policy: a high-cardinality
// stream (every key unique) disables the local table after the warm-up; a
// low-cardinality stream keeps it enabled.
func TestLocalAggAdaptiveDisable(t *testing.T) {
	st := &AggTableState{Init: make([]byte, 8), Shards: 4,
		Merge: []AggMerge{{Op: MergeSumI64, Off: 0}}}

	uniq := NewLocalAggTable(st, st.NewInstance())
	rng := rand.New(rand.NewSource(42))
	var k [8]byte
	for m := 0; m < 8 && !uniq.Disabled(); m++ {
		for i := 0; i < 2048; i++ {
			binary.LittleEndian.PutUint64(k[:], rng.Uint64())
			uniq.FindOrCreate(k[:], Hash64(k[:]), nil)
		}
		uniq.Flush()
	}
	if !uniq.Disabled() {
		t.Fatal("unique-key stream did not disable the local table")
	}

	hot := NewLocalAggTable(st, st.NewInstance())
	for m := 0; m < 8; m++ {
		for i := 0; i < 2048; i++ {
			binary.LittleEndian.PutUint64(k[:], uint64(i%4)) // Q1-style: 4 groups
			row, _, ok := hot.FindOrCreate(k[:], Hash64(k[:]), nil)
			if !ok {
				t.Fatal("local table rejected a 4-group stream")
			}
			PutI64(row, RowPayloadOff(row), GetI64(row, RowPayloadOff(row))+1)
		}
		hot.Flush()
	}
	if hot.Disabled() {
		t.Fatal("4-group stream disabled the local table")
	}
	if hot.Hits() == 0 {
		t.Fatal("no local hits on a 4-group stream")
	}
	// All updates must have reached the backing table via the flushes.
	var total int64
	for _, row := range hot.backing.Snapshot() {
		total += GetI64(row, RowPayloadOff(row))
	}
	if total != 8*2048 {
		t.Fatalf("backing total = %d, want %d", total, 8*2048)
	}
}

// TestLocalAggMaybeFlush checks the between-chunk policy: a clustered stream
// (duplicates adjacent, far more groups than local capacity) keeps the table
// enabled through repeated drains, while a non-repeating stream is disabled
// by MaybeFlush itself — mid-morsel, without waiting for Flush.
func TestLocalAggMaybeFlush(t *testing.T) {
	st := &AggTableState{Init: make([]byte, 8), Shards: 4,
		Merge: []AggMerge{{Op: MergeSumI64, Off: 0}}}

	// Clustered: 4x localAggGroups distinct keys, 8 adjacent duplicates each,
	// MaybeFlush consulted every 1024 "rows" (one chunk).
	clus := NewLocalAggTable(st, st.NewInstance())
	var k [8]byte
	var spills int64
	probes := 0
	for g := 0; g < 4*localAggGroups; g++ {
		binary.LittleEndian.PutUint64(k[:], uint64(g))
		h := Hash64(k[:])
		for d := 0; d < 8; d++ {
			if probes%1024 == 0 {
				spills += clus.MaybeFlush()
			}
			probes++
			if row, _, ok := clus.FindOrCreate(k[:], h, nil); ok {
				PutI64(row, RowPayloadOff(row), GetI64(row, RowPayloadOff(row))+1)
			}
		}
	}
	if clus.Disabled() {
		t.Fatal("clustered stream disabled the local table")
	}
	if spills < 2*localAggGroups {
		t.Fatalf("clustered stream spilled only %d rows across drains", spills)
	}
	spills += clus.Flush()
	var total int64
	for _, row := range clus.backing.Snapshot() {
		total += GetI64(row, RowPayloadOff(row))
	}
	// Every locally-absorbed update must have reached the backing table.
	if want := clus.Hits() + spills; total != want {
		t.Fatalf("backing total = %d, want hits+creates = %d", total, want)
	}

	// Non-repeating: every key unique. MaybeFlush must disable once the
	// warm-up probes accumulate, before any morsel-end Flush.
	uniq := NewLocalAggTable(st, st.NewInstance())
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4*localAggMinProbes; i++ {
		if i%1024 == 0 {
			uniq.MaybeFlush()
		}
		binary.LittleEndian.PutUint64(k[:], rng.Uint64())
		uniq.FindOrCreate(k[:], Hash64(k[:]), nil)
	}
	if !uniq.Disabled() {
		t.Fatal("non-repeating stream was not disabled between chunks")
	}
}

// TestAggReserveNoMidBatchResize verifies the satellite fix: with a correct
// SizeHint the batched build performs zero bucket-array resizes (reserve
// pre-sizes once per (chunk, shard) before inserting).
func TestAggReserveNoMidBatchResize(t *testing.T) {
	n := 8192
	keys := deriveKeys([]byte{1}, n, uint64(n)*2, 8)
	st := &AggTableState{Init: make([]byte, 8), Shards: 8, SizeHint: n}
	tbl := st.NewInstance()
	base := tbl.Resizes()
	var sc BatchScratch
	var hashes []uint64
	dst := make([][]byte, 512)
	for at := 0; at < len(keys); at += 512 {
		ck := keys[at:min(at+512, len(keys))]
		hashes = HashBatch(ck, hashes)
		tbl.FindOrCreateBatch(ck, nil, hashes, dst[:len(ck)], &sc)
	}
	if got := tbl.Resizes() - base; got != 0 {
		t.Fatalf("batched build resized %d times despite SizeHint", got)
	}
}

package rt

import (
	"encoding/binary"
	"sync"
)

// Local hash-partitioned exchange (DESIGN.md §15). A Partition suboperator at
// a pipeline break hash-routes every packed row into one of P per-partition
// tuple buffers; the downstream build pipeline then runs one morsel per
// partition, so each partition of the build-side hash table is written by
// exactly one worker sequentially. That single-writer discipline is what the
// partitioned table variants below exploit: no shard mutex, no CAS, no
// thread-local spill path.
//
// Routing uses hash bits 48..55 — disjoint from the shard dispatch (h>>56),
// the in-shard bucket index (low bits), the bloom slot (h>>16) and the bloom
// tag (h>>40) — so bloom/tag addressing of the sealed tables is unaffected by
// partitioning.

// MaxPartitions bounds the exchange fan-out: partition indices come from 8
// dedicated hash bits.
const MaxPartitions = 256

// NormalizePartitions rounds n up to a power of two in [1, MaxPartitions] so
// partition dispatch is a mask of the dedicated hash bits.
func NormalizePartitions(n int) int {
	if n < 1 {
		n = 1
	}
	p := 1
	for p < n && p < MaxPartitions {
		p <<= 1
	}
	return p
}

// partitionOf extracts the partition index from the dedicated routing bits.
//
//inkfuse:hotpath
func partitionOf(h, pmask uint64) uint64 { return (h >> 48) & pmask }

// ExchangeState is the shared runtime state of one exchange: the Partition
// suboperator of the routing pipeline writes into it through per-worker
// ExchangeWriters, and the downstream pipeline's ExchangeRead source reads the
// sealed per-partition row lists, one morsel per partition.
type ExchangeState struct {
	// Partitions is the exchange fan-out (power of two ≤ MaxPartitions).
	Partitions int

	mu      sync.Mutex
	budget  *MemBudget
	writers []*ExchangeWriter

	sealed   bool
	parts    [][][]byte // per-partition row lists, set by Seal
	partRows []int64    // per-partition routed-row counts (skew counters)
	routed   int64
}

// ExchangeWriter is one worker's private routing buffer: per-partition row
// lists backed by a worker-owned arena. Not safe for concurrent use.
type ExchangeWriter struct {
	pmask uint64
	arena *Arena
	rows  [][][]byte
}

// SetBudget charges all future routing-buffer allocations to the query
// budget. Call before the routing pipeline runs; writers created afterwards
// inherit it.
func (s *ExchangeState) SetBudget(b *MemBudget) {
	if b == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.budget = b
	for _, w := range s.writers {
		w.arena.SetBudget(b)
	}
}

// NewWriter registers a fresh per-worker writer. Registration is the one cold
// locked step of the exchange; all routing happens through the returned
// writer without synchronization.
func (s *ExchangeState) NewWriter() *ExchangeWriter {
	p := NormalizePartitions(s.Partitions)
	w := &ExchangeWriter{
		pmask: uint64(p - 1),
		arena: NewArena(0),
		rows:  make([][][]byte, p),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	w.arena.SetBudget(s.budget)
	if s.budget != nil {
		s.budget.Charge(int64(p) * 24) // per-partition slice headers
	}
	s.writers = append(s.writers, w)
	return w
}

// Route copies one packed row into the partition its key hash selects. The
// copy pins the row beyond the source chunk's lifetime (tuple-buffer vectors
// are reused per morsel).
//
//inkfuse:hotpath
func (w *ExchangeWriter) Route(row []byte, h uint64) {
	p := partitionOf(h, w.pmask)
	cp := w.arena.Alloc(len(row))
	copy(cp, row)
	w.rows[p] = append(w.rows[p], cp) //inklint:allow alloc — amortized — per-partition row lists double; O(1) amortized per routed row
}

// Seal concatenates the per-worker buffers into per-partition row lists and
// computes the routing/skew counters. Called once by the scheduler when the
// routing pipeline finalizes; within a partition rows keep worker order, and
// worker registration order is scheduler-determined but irrelevant to the
// downstream build (partitioned table contents are order-insensitive for
// aggregation and sealed per-partition for joins).
func (s *ExchangeState) Seal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		return
	}
	p := NormalizePartitions(s.Partitions)
	s.parts = make([][][]byte, p)
	s.partRows = make([]int64, p)
	s.routed = 0
	for pi := 0; pi < p; pi++ {
		n := 0
		for _, w := range s.writers {
			if pi < len(w.rows) {
				n += len(w.rows[pi])
			}
		}
		if s.budget != nil {
			s.budget.Charge(int64(n) * 24)
		}
		part := make([][]byte, 0, n)
		for _, w := range s.writers {
			if pi < len(w.rows) {
				part = append(part, w.rows[pi]...)
			}
		}
		s.parts[pi] = part
		s.partRows[pi] = int64(n)
		s.routed += int64(n)
	}
	s.sealed = true
}

// Sealed reports whether Seal ran.
func (s *ExchangeState) Sealed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sealed
}

// PartitionRows returns partition p's sealed row list.
func (s *ExchangeState) PartitionRows(p int) [][]byte { return s.parts[p] }

// PartRows returns the per-partition routed-row counts (skew counters).
func (s *ExchangeState) PartRows() []int64 { return s.partRows }

// Routed returns the total number of rows routed through the exchange.
func (s *ExchangeState) Routed() int64 { return s.routed }

// MaxPartRows returns the largest partition's row count — the skew signal
// surfaced by EXPLAIN ANALYZE and the benchmark counters.
func (s *ExchangeState) MaxPartRows() int64 {
	var m int64
	for _, n := range s.partRows {
		m = max(m, n)
	}
	return m
}

// Reset drops all routed rows and writers, making the owning plan reusable
// for another execution.
func (s *ExchangeState) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.budget = nil
	s.writers = nil
	s.sealed = false
	s.parts = nil
	s.partRows = nil
	s.routed = 0
}

// PartitionedAggTable is the exchange-side aggregation table: one unsharded,
// completely lock-free part per partition. Each part is written by exactly
// one worker (the partition's single morsel), so FindOrCreate takes no lock
// and never spills through a thread-local table — with exchange on, HTSpills
// stays 0 on these paths by construction.
type PartitionedAggTable struct {
	payloadInit []byte
	parts       []aggShard
	pmask       uint64
}

// NewPartitionedAggTable creates a partitioned table whose new groups start
// with the given payload template.
func NewPartitionedAggTable(payloadInit []byte, partitions int) *PartitionedAggTable {
	p := NormalizePartitions(partitions)
	t := &PartitionedAggTable{
		payloadInit: append([]byte(nil), payloadInit...),
		parts:       make([]aggShard, p),
		pmask:       uint64(p - 1),
	}
	for i := range t.parts {
		s := &t.parts[i]
		s.buckets = make([]int32, 64)
		s.mask = 63
		s.arena = NewArena(0)
	}
	return t
}

// Partitions returns the partition count (power of two).
func (t *PartitionedAggTable) Partitions() int { return len(t.parts) }

// SetBudget charges this table's future allocations to the query budget.
func (t *PartitionedAggTable) SetBudget(b *MemBudget) {
	if b == nil {
		return
	}
	for i := range t.parts {
		s := &t.parts[i]
		s.budget = b
		s.arena.SetBudget(b)
	}
}

// FindOrCreate returns the packed group row for the key, creating it if
// absent. NOT safe for concurrent use on one partition: the caller must hold
// the exchange's single-writer discipline (all keys of one morsel route to
// one partition, and each partition is one morsel).
//
//inkfuse:hotpath
func (t *PartitionedAggTable) FindOrCreate(key []byte, h uint64) []byte {
	return t.FindOrCreateSeed(key, h, nil)
}

// FindOrCreateSeed is FindOrCreate with per-group creation extras (see
// AggTable.FindOrCreateSeed). Lock-free: partition ownership replaces the
// shard mutex.
//
//inkfuse:hotpath
func (t *PartitionedAggTable) FindOrCreateSeed(key []byte, h uint64, seed []byte) []byte {
	s := &t.parts[partitionOf(h, t.pmask)]
	return s.findOrCreate(key, h, t.payloadInit, seed)
}

// FindOrCreateBatch resolves a whole chunk of keys without locks: under the
// exchange every key of the chunk routes to the same single-writer partition,
// so there is nothing to group or lock — the batch is a straight loop over
// the part's open-addressing probe.
//
//inkfuse:hotpath
func (t *PartitionedAggTable) FindOrCreateBatch(keys, seeds [][]byte, hashes []uint64, dst [][]byte) {
	var seed []byte
	for i, k := range keys {
		if seeds != nil {
			seed = seeds[i]
		}
		dst[i] = t.FindOrCreateSeed(k, hashes[i], seed)
	}
}

// Groups returns the number of groups across all partitions.
func (t *PartitionedAggTable) Groups() int {
	n := 0
	for i := range t.parts {
		n += len(t.parts[i].rows)
	}
	return n
}

// Resizes returns the total number of bucket-array resizes (stats).
func (t *PartitionedAggTable) Resizes() int64 {
	var n int64
	for i := range t.parts {
		n += t.parts[i].resizes
	}
	return n
}

// Snapshot returns all group rows in partition order. Called once the build
// pipeline finished; the result backs the morsels of the aggregate-reading
// pipeline.
func (t *PartitionedAggTable) Snapshot() [][]byte {
	out := make([][]byte, 0, t.Groups())
	for i := range t.parts {
		out = append(out, t.parts[i].rows...)
	}
	return out
}

// PartitionedJoinTable is the exchange-side join table: one unsharded part
// per partition, inserted into lock-free under the exchange's single-writer
// discipline, sealed into per-part chained buckets plus a shared bloom/tag
// filter with exactly the addressing of the sharded JoinTable (slot h>>16,
// tag h>>40).
type PartitionedJoinTable struct {
	parts  []joinShard
	pmask  uint64
	sealed bool

	filter []byte
	fmask  uint64
}

// NewPartitionedJoinTable creates an empty partitioned join table.
func NewPartitionedJoinTable(partitions int) *PartitionedJoinTable {
	p := NormalizePartitions(partitions)
	t := &PartitionedJoinTable{parts: make([]joinShard, p), pmask: uint64(p - 1)}
	for i := range t.parts {
		t.parts[i].arena = NewArena(0)
	}
	return t
}

// Partitions returns the partition count (power of two).
func (t *PartitionedJoinTable) Partitions() int { return len(t.parts) }

// SetBudget charges this table's future allocations to the query budget.
func (t *PartitionedJoinTable) SetBudget(b *MemBudget) {
	if b == nil {
		return
	}
	for i := range t.parts {
		s := &t.parts[i]
		s.budget = b
		s.arena.SetBudget(b)
	}
}

// Insert adds a packed row to the key's partition. Lock-free: NOT safe for
// concurrent use on one partition; the exchange guarantees each partition is
// built by exactly one worker.
//
//inkfuse:hotpath
func (t *PartitionedJoinTable) Insert(key, payload []byte, h uint64) {
	s := &t.parts[partitionOf(h, t.pmask)]
	s.budget.Charge(entryOverhead)
	row := s.arena.Alloc(4 + len(key) + len(payload))
	binary.LittleEndian.PutUint32(row, uint32(len(key)))
	copy(row[4:], key)
	copy(row[4+len(key):], payload)
	s.rows = append(s.rows, row)   //inklint:allow alloc — amortized — part entry arrays double
	s.hashes = append(s.hashes, h) //inklint:allow alloc — amortized — part entry arrays double
}

// InsertBatch appends a whole chunk of build rows lock-free: under the
// exchange the chunk belongs to one partition, so no shard grouping or lock
// acquisition is needed.
//
//inkfuse:hotpath
func (t *PartitionedJoinTable) InsertBatch(keys, payloads [][]byte, hashes []uint64) {
	for i, k := range keys {
		t.Insert(k, payloads[i], hashes[i])
	}
}

// Seal builds per-partition bucket arrays and the shared bloom/tag filter.
// Must be called after the build pipeline completes and before any Lookup.
func (t *PartitionedJoinTable) Seal() {
	total := 0
	for i := range t.parts {
		s := &t.parts[i]
		n := len(s.rows)
		total += n
		cap := uint64(16)
		for cap < uint64(2*n) {
			cap <<= 1
		}
		s.budget.Charge(int64(cap)*4 + int64(n)*4)
		s.buckets = make([]int32, cap)
		s.next = make([]int32, n)
		s.mask = cap - 1
		for e := 0; e < n; e++ {
			i := s.hashes[e] & s.mask
			s.next[e] = s.buckets[i]
			s.buckets[i] = int32(e + 1)
		}
	}
	fcap := uint64(64)
	for fcap < uint64(2*total) && fcap < maxBloomBytes {
		fcap <<= 1
	}
	t.parts[0].budget.Charge(int64(fcap))
	t.filter = make([]byte, fcap)
	t.fmask = fcap - 1
	for i := range t.parts {
		for _, h := range t.parts[i].hashes {
			t.filter[(h>>16)&t.fmask] |= bloomTag(h)
		}
	}
	t.sealed = true
}

// MayContain consults the shared bloom/tag filter. The table must be sealed.
//
//inkfuse:hotpath
func (t *PartitionedJoinTable) MayContain(h uint64) bool {
	return t.filter[(h>>16)&t.fmask]&bloomTag(h) != 0
}

// Rows returns the number of build rows.
func (t *PartitionedJoinTable) Rows() int {
	n := 0
	for i := range t.parts {
		n += len(t.parts[i].rows)
	}
	return n
}

// PartRows returns the per-partition build-row counts (skew counters).
func (t *PartitionedJoinTable) PartRows() []int64 {
	out := make([]int64, len(t.parts))
	for i := range t.parts {
		out[i] = int64(len(t.parts[i].rows))
	}
	return out
}

// Lookup starts a match iteration for a probe key, dispatching on the same
// routing bits the build side used. It returns the sharded table's MatchIter
// value type, so probe loops are identical for both table variants.
//
//inkfuse:hotpath
func (t *PartitionedJoinTable) Lookup(key []byte, h uint64) MatchIter {
	s := &t.parts[partitionOf(h, t.pmask)]
	return MatchIter{shard: s, at: s.buckets[h&s.mask], hash: h, key: key}
}

// LookupBatch runs a whole chunk of probe hashes through the shared bloom/tag
// filter (see JoinTable.LookupBatch).
//
//inkfuse:hotpath
func (t *PartitionedJoinTable) LookupBatch(hashes []uint64, sel []int32) ([]int32, int) {
	f, m := t.filter, t.fmask
	skips := 0
	for i, h := range hashes {
		if f[(h>>16)&m]&bloomTag(h) != 0 {
			sel = append(sel, int32(i)) //inklint:allow alloc — sel grows to chunk size once; caller reuses the buffer
		} else {
			skips++
		}
	}
	return sel, skips
}

// Touch reads the filter line and, on a possible match, the partition's
// bucket head and first row header (ROF prefetch staging).
//
//inkfuse:hotpath
func (t *PartitionedJoinTable) Touch(key []byte, h uint64) byte {
	acc := t.filter[(h>>16)&t.fmask]
	if acc&bloomTag(h) == 0 {
		return acc
	}
	s := &t.parts[partitionOf(h, t.pmask)]
	b := s.buckets[h&s.mask]
	if b != 0 {
		e := b - 1
		return s.rows[e][0] ^ byte(s.hashes[e])
	}
	return acc
}

// Exists reports whether any build row matches the key (semi joins).
//
//inkfuse:hotpath
func (t *PartitionedJoinTable) Exists(key []byte, h uint64) bool {
	it := t.Lookup(key, h)
	return it.Next() != nil
}

// JoinIndex is the probe-side surface shared by the sharded JoinTable and the
// exchange's PartitionedJoinTable: generated probe and prefetch code works
// against this interface, so probing is identical whether the build was
// partitioned or not.
type JoinIndex interface {
	MayContain(h uint64) bool
	Lookup(key []byte, h uint64) MatchIter
	LookupBatch(hashes []uint64, sel []int32) ([]int32, int)
	Touch(key []byte, h uint64) byte
	Exists(key []byte, h uint64) bool
	Rows() int
}

var (
	_ JoinIndex = (*JoinTable)(nil)
	_ JoinIndex = (*PartitionedJoinTable)(nil)
)

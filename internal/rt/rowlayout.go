package rt

import (
	"encoding/binary"
	"math"

	"inkfuse/internal/types"
)

// Packed row format shared by aggregation and join hash tables:
//
//	row := [u32 keyLen][key blob][payload]
//	key blob := [fixed key fields at fixed offsets][var key fields, each u32-length-prefixed]
//	payload  := [fixed payload fields at fixed offsets][var payload fields, u32-length-prefixed]
//
// Key fields are packed densely at the front so the hash table can hash and
// compare the whole key blob with one byte-string comparison (the memcmp of
// paper §IV-D). Variable-size key fields are inlined length-prefixed rather
// than stored behind pointer slots as InkFuse does; see DESIGN.md §2.

// PutBool writes a bool at off.
//
//inkfuse:hotpath
func PutBool(b []byte, off int, v bool) {
	if v {
		b[off] = 1
	} else {
		b[off] = 0
	}
}

// GetBool reads a bool at off.
//
//inkfuse:hotpath
func GetBool(b []byte, off int) bool { return b[off] != 0 }

// PutI32 writes an int32 at off.
//
//inkfuse:hotpath
func PutI32(b []byte, off int, v int32) {
	binary.LittleEndian.PutUint32(b[off:], uint32(v))
}

// GetI32 reads an int32 at off.
//
//inkfuse:hotpath
func GetI32(b []byte, off int) int32 {
	return int32(binary.LittleEndian.Uint32(b[off:]))
}

// PutI64 writes an int64 at off.
//
//inkfuse:hotpath
func PutI64(b []byte, off int, v int64) {
	binary.LittleEndian.PutUint64(b[off:], uint64(v))
}

// GetI64 reads an int64 at off.
//
//inkfuse:hotpath
func GetI64(b []byte, off int) int64 {
	return int64(binary.LittleEndian.Uint64(b[off:]))
}

// PutF64 writes a float64 at off.
//
//inkfuse:hotpath
func PutF64(b []byte, off int, v float64) {
	binary.LittleEndian.PutUint64(b[off:], math.Float64bits(v))
}

// GetF64 reads a float64 at off.
//
//inkfuse:hotpath
func GetF64(b []byte, off int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
}

// AppendString appends a u32-length-prefixed string to buf.
//
//inkfuse:hotpath
func AppendString(buf []byte, s string) []byte {
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(s)))
	buf = append(buf, l[:]...) //inklint:allow alloc — appends into the caller’s reused row-build buffer
	return append(buf, s...)   //inklint:allow alloc — appends into the caller’s reused row-build buffer
}

// SkipStrings advances off past n length-prefixed strings and returns the new
// offset.
//
//inkfuse:hotpath
func SkipStrings(b []byte, off, n int) int {
	for i := 0; i < n; i++ {
		l := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4 + l
	}
	return off
}

// GetString reads the length-prefixed string starting at off.
//
//inkfuse:hotpath
func GetString(b []byte, off int) string {
	l := int(binary.LittleEndian.Uint32(b[off:]))
	return string(b[off+4 : off+4+l]) //inklint:allow alloc — packed rows store raw bytes; string emission must materialize
}

// RowKeyLen reads the key-blob length from a packed row header.
//
//inkfuse:hotpath
func RowKeyLen(row []byte) int {
	return int(binary.LittleEndian.Uint32(row))
}

// RowKey returns the key blob of a packed row.
//
//inkfuse:hotpath
func RowKey(row []byte) []byte {
	kl := RowKeyLen(row)
	return row[4 : 4+kl]
}

// RowPayloadOff returns the byte offset of the payload region.
//
//inkfuse:hotpath
func RowPayloadOff(row []byte) int { return 4 + RowKeyLen(row) }

// Field describes one field of a packed row layout.
type Field struct {
	Kind types.Kind
	Key  bool // packed into the key blob (hashed + compared)
}

// Layout precomputes where each field of a packed row lives. It is built by
// plan lowering and distributed to key-pack / unpack / aggregate suboperators
// as runtime state (the offsets are runtime parameters, paper §IV-D, so that
// the suboperators themselves stay enumerable).
type Layout struct {
	Fields []Field

	// FixedOff[i] is the offset of fixed field i inside its region (key blob
	// or payload); -1 for variable-size fields.
	FixedOff []int
	// VarIdx[i] is the ordinal of variable field i among the variable fields
	// of its region; -1 for fixed fields.
	VarIdx []int

	KeyFixedWidth     int // bytes of fixed key fields
	PayloadFixedWidth int // bytes of fixed payload fields
	KeyVarCount       int
	PayloadVarCount   int
}

// NewLayout computes a layout for the given fields. Fixed fields are placed
// first within their region in declaration order; variable fields follow,
// length-prefixed, in declaration order.
func NewLayout(fields []Field) *Layout {
	l := &Layout{
		Fields:   fields,
		FixedOff: make([]int, len(fields)),
		VarIdx:   make([]int, len(fields)),
	}
	for i, f := range fields {
		l.FixedOff[i] = -1
		l.VarIdx[i] = -1
		w := f.Kind.Width()
		switch {
		case f.Key && w > 0:
			l.FixedOff[i] = l.KeyFixedWidth
			l.KeyFixedWidth += w
		case f.Key:
			l.VarIdx[i] = l.KeyVarCount
			l.KeyVarCount++
		case w > 0:
			l.FixedOff[i] = l.PayloadFixedWidth
			l.PayloadFixedWidth += w
		default:
			l.VarIdx[i] = l.PayloadVarCount
			l.PayloadVarCount++
		}
	}
	return l
}

// HasVarKey reports whether the key blob contains variable-size fields.
func (l *Layout) HasVarKey() bool { return l.KeyVarCount > 0 }

// ReadFixed reads fixed field values from packed rows; helpers used by the
// unpack primitives and the Volcano oracle.

// PayloadStringOff returns the offset of the varIdx-th payload string of row.
//
//inkfuse:hotpath
func PayloadStringOff(row []byte, payloadFixedWidth, varIdx int) int {
	off := RowPayloadOff(row) + payloadFixedWidth
	return SkipStrings(row, off, varIdx)
}

// KeyStringOff returns the offset of the varIdx-th key string of row.
//
//inkfuse:hotpath
func KeyStringOff(row []byte, keyFixedWidth, varIdx int) int {
	off := 4 + keyFixedWidth
	return SkipStrings(row, off, varIdx)
}

package rt

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func i64Key(v int64) []byte {
	var k [8]byte
	binary.LittleEndian.PutUint64(k[:], uint64(v))
	return k[:]
}

func TestAggTableModel(t *testing.T) {
	// Model check against a plain map: random keys, SUM aggregation.
	init := make([]byte, 8)
	tbl := NewAggTable(init, 4)
	model := map[int64]float64{}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50_000; i++ {
		k := int64(r.Intn(2000))
		v := r.Float64()
		row := tbl.FindOrCreate(i64Key(k), Hash64(i64Key(k)))
		off := RowPayloadOff(row)
		PutF64(row, off, GetF64(row, off)+v)
		model[k] += v
	}
	if tbl.Groups() != len(model) {
		t.Fatalf("groups: %d vs %d", tbl.Groups(), len(model))
	}
	for _, row := range tbl.Snapshot() {
		k := int64(binary.LittleEndian.Uint64(RowKey(row)))
		got := GetF64(row, RowPayloadOff(row))
		if math.Abs(got-model[k]) > 1e-9*math.Abs(model[k])+1e-12 {
			t.Fatalf("key %d: %v vs %v", k, got, model[k])
		}
	}
	if tbl.Resizes() == 0 {
		t.Fatal("expected bucket resizes with 2000 groups and 64 initial buckets")
	}
}

func TestAggTableVariableKeys(t *testing.T) {
	tbl := NewAggTable(make([]byte, 8), 2)
	model := map[string]int64{}
	for i := 0; i < 10_000; i++ {
		s := fmt.Sprintf("key-%d", i%337)
		key := AppendString(nil, s)
		row := tbl.FindOrCreate(key, Hash64(key))
		off := RowPayloadOff(row)
		PutI64(row, off, GetI64(row, off)+1)
		model[s]++
	}
	if tbl.Groups() != len(model) {
		t.Fatalf("groups: %d vs %d", tbl.Groups(), len(model))
	}
	for _, row := range tbl.Snapshot() {
		s := GetString(row, 4)
		if GetI64(row, RowPayloadOff(row)) != model[s] {
			t.Fatalf("count mismatch for %q", s)
		}
	}
}

func TestAggTablePrefixKeysDistinct(t *testing.T) {
	// Length-prefixed string keys: "a"+"bc" must not equal "ab"+"c".
	tbl := NewAggTable(nil, 1)
	k1 := AppendString(AppendString(nil, "a"), "bc")
	k2 := AppendString(AppendString(nil, "ab"), "c")
	tbl.FindOrCreate(k1, Hash64(k1))
	tbl.FindOrCreate(k2, Hash64(k2))
	if tbl.Groups() != 2 {
		t.Fatal("prefix-ambiguous keys collapsed")
	}
}

func TestAggTableEmptyKey(t *testing.T) {
	tbl := NewAggTable(make([]byte, 8), 1)
	for i := 0; i < 100; i++ {
		row := tbl.FindOrCreate(nil, Hash64(nil))
		PutI64(row, RowPayloadOff(row), GetI64(row, RowPayloadOff(row))+1)
	}
	if tbl.Groups() != 1 {
		t.Fatalf("keyless groups = %d", tbl.Groups())
	}
	if got := GetI64(tbl.Snapshot()[0], 4); got != 100 {
		t.Fatalf("keyless count = %d", got)
	}
}

func TestAggTableConcurrent(t *testing.T) {
	tbl := NewAggTable(make([]byte, 8), 8)
	var wg sync.WaitGroup
	workers, per := 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := i64Key(int64(i % 97))
				row := tbl.FindOrCreate(k, Hash64(k))
				// Only assert structural safety here: concurrent slot updates
				// without coordination are the reason the engine uses
				// per-worker pre-aggregation tables.
				_ = row
			}
		}(w)
	}
	wg.Wait()
	if tbl.Groups() != 97 {
		t.Fatalf("groups = %d, want 97", tbl.Groups())
	}
}

func TestAggMergeStates(t *testing.T) {
	st := &AggTableState{
		Init:   make([]byte, 24),
		Shards: 2,
		Merge: []AggMerge{
			{Op: MergeSumF64, Off: 0},
			{Op: MergeSumI64, Off: 8},
			{Op: MergeMinF64, Off: 16},
		},
	}
	PutF64(st.Init, 16, math.Inf(1))
	a, b := st.NewInstance(), st.NewInstance()
	upd := func(tbl *AggTable, k int64, f float64) {
		row := tbl.FindOrCreate(i64Key(k), Hash64(i64Key(k)))
		off := RowPayloadOff(row)
		PutF64(row, off, GetF64(row, off)+f)
		PutI64(row, off+8, GetI64(row, off+8)+1)
		if f < GetF64(row, off+16) {
			PutF64(row, off+16, f)
		}
	}
	upd(a, 1, 2.0)
	upd(a, 1, 5.0)
	upd(a, 2, 7.0)
	upd(b, 1, 1.0)
	upd(b, 3, 9.0)
	g := st.NewInstance()
	st.MergeInto(g, a)
	st.MergeInto(g, b)
	if g.Groups() != 3 {
		t.Fatalf("merged groups = %d", g.Groups())
	}
	row := g.FindOrCreate(i64Key(1), Hash64(i64Key(1)))
	off := RowPayloadOff(row)
	if GetF64(row, off) != 8.0 || GetI64(row, off+8) != 3 || GetF64(row, off+16) != 1.0 {
		t.Fatalf("merged slots: sum=%v cnt=%v min=%v", GetF64(row, off), GetI64(row, off+8), GetF64(row, off+16))
	}
}

func TestJoinTableModel(t *testing.T) {
	tbl := NewJoinTable(4)
	model := map[int64][]float64{}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 20_000; i++ {
		k := int64(r.Intn(500))
		v := r.Float64()
		payload := make([]byte, 8)
		PutF64(payload, 0, v)
		tbl.Insert(i64Key(k), payload, Hash64(i64Key(k)))
		model[k] = append(model[k], v)
	}
	tbl.Seal()
	if tbl.Rows() != 20_000 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
	for k, vals := range model {
		it := tbl.Lookup(i64Key(k), Hash64(i64Key(k)))
		got := map[float64]int{}
		n := 0
		for row := it.Next(); row != nil; row = it.Next() {
			got[GetF64(row, RowPayloadOff(row))]++
			n++
		}
		if n != len(vals) {
			t.Fatalf("key %d: %d matches, want %d", k, n, len(vals))
		}
		for _, v := range vals {
			if got[v] == 0 {
				t.Fatalf("key %d missing payload %v", k, v)
			}
			got[v]--
		}
	}
	// Missing keys.
	if tbl.Exists(i64Key(10_000), Hash64(i64Key(10_000))) {
		t.Fatal("phantom match")
	}
}

func TestJoinTableEmpty(t *testing.T) {
	tbl := NewJoinTable(2)
	tbl.Seal()
	it := tbl.Lookup(i64Key(1), Hash64(i64Key(1)))
	if it.Next() != nil {
		t.Fatal("empty table matched")
	}
	if tbl.Touch(i64Key(1), Hash64(i64Key(1))) != 0 {
		t.Fatal("touch on empty")
	}
}

func TestJoinTableConcurrentBuild(t *testing.T) {
	tbl := NewJoinTable(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := i64Key(int64(i))
				tbl.Insert(k, nil, Hash64(k))
			}
		}(w)
	}
	wg.Wait()
	tbl.Seal()
	if tbl.Rows() != 16_000 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
	it := tbl.Lookup(i64Key(7), Hash64(i64Key(7)))
	n := 0
	for it.Next() != nil {
		n++
	}
	if n != 8 {
		t.Fatalf("key 7 matches = %d, want 8", n)
	}
}

func TestJoinTableQuickModel(t *testing.T) {
	// Property: for random multisets of small keys, per-key match counts
	// equal insertion counts.
	f := func(keys []uint8) bool {
		tbl := NewJoinTable(2)
		model := map[int64]int{}
		for _, k8 := range keys {
			k := int64(k8 % 16)
			tbl.Insert(i64Key(k), nil, Hash64(i64Key(k)))
			model[k]++
		}
		tbl.Seal()
		for k, want := range model {
			it := tbl.Lookup(i64Key(k), Hash64(i64Key(k)))
			n := 0
			for it.Next() != nil {
				n++
			}
			if n != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

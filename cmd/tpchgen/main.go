// Command tpchgen generates the TPC-H-style benchmark data and either
// prints table statistics or exports a table as CSV.
//
//	tpchgen -sf 0.1                    # print row counts
//	tpchgen -sf 0.1 -table lineitem -csv -limit 100 > lineitem.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"

	"inkfuse/internal/tpch"
	"inkfuse/internal/types"
)

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor (1.0 ≈ 6M lineitem rows)")
	seed := flag.Uint64("seed", 42, "generator seed")
	table := flag.String("table", "", "table to export")
	asCSV := flag.Bool("csv", false, "write the table as CSV to stdout")
	limit := flag.Int("limit", 0, "max rows to export (0 = all)")
	flag.Parse()

	cat := tpch.Generate(*sf, *seed)

	if *table == "" {
		fmt.Printf("TPC-H-style catalog at SF %g (seed %d)\n", *sf, *seed)
		for _, name := range []string{"region", "nation", "supplier", "customer", "part", "orders", "lineitem"} {
			t := cat.MustGet(name)
			fmt.Printf("  %-10s %10d rows, %d columns\n", name, t.Rows(), len(t.Schema))
		}
		return
	}

	t, err := cat.Get(*table)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpchgen:", err)
		os.Exit(1)
	}
	n := t.Rows()
	if *limit > 0 && *limit < n {
		n = *limit
	}
	if !*asCSV {
		fmt.Printf("%s: %d rows\n", t.Name, t.Rows())
		return
	}
	w := csv.NewWriter(os.Stdout)
	header := make([]string, len(t.Schema))
	for i, c := range t.Schema {
		header[i] = c.Name
	}
	if err := w.Write(header); err != nil {
		fmt.Fprintln(os.Stderr, "tpchgen:", err)
		os.Exit(1)
	}
	rec := make([]string, len(t.Cols))
	for r := 0; r < n; r++ {
		for i, col := range t.Cols {
			if col.Kind == types.Date {
				rec[i] = types.DateString(col.I32[r])
			} else {
				rec[i] = fmt.Sprintf("%v", col.Value(r))
			}
		}
		if err := w.Write(rec); err != nil {
			fmt.Fprintln(os.Stderr, "tpchgen:", err)
			os.Exit(1)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		fmt.Fprintln(os.Stderr, "tpchgen:", err)
		os.Exit(1)
	}
}

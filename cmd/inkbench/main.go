// Command inkbench regenerates the paper's tables and figures:
//
//	inkbench -exp fig9   [-sf 0.5]   — Fig 9: relative backend throughput
//	inkbench -exp table1 [-sf 0.5]   — Table I: counter proxies for Q1/Q4
//	inkbench -exp fig10  [-sfs 0.005,0.05,0.5] — Fig 10: cross-system latency
//	inkbench -exp ablations          — DESIGN.md ablation suite
//	inkbench -exp all                — everything above
//
// Observability modes (skip the experiments):
//
//	inkbench -explain [-backend hybrid] [-queries q1,q6] — EXPLAIN ANALYZE:
//	    run each query once and print the suboperator plan annotated with
//	    measured morsel counts, busy time, compile timing and hybrid routing
//	inkbench -explain -trace          — additionally dump the full per-worker
//	    execution trace (morsel-level EWMA series of the hybrid router)
//	inkbench -sql [-backend hybrid] [-queries q1,q6] — run each query from
//	    its SQL text through the text frontend (parse → bind → lower) and
//	    print the plan-cache fingerprint alongside the result
//	inkbench -metrics                 — print the engine metrics registry
//	    after whatever else ran
//	inkbench -json [-sf 0.1]          — machine-readable benchmark: every
//	    -queries query on all four backends, median wall ms / rows/sec per
//	    cell as JSON on stdout (scripts/bench.sh commits this as BENCH_*.json)
//
// The -exchange flag (off | on | both) lowers plans with the hash-partitioned
// exchange: group-by and join builds route rows into per-partition buffers so
// every hash-table partition is single-writer (DESIGN.md §15). "both" doubles
// the -json cells into an A/B axis; -partitions overrides the fan-out.
//
// Degraded measurements (a background compile failed mid-run and the
// pipeline was served vectorized-only) are flagged with '*' in every table
// and reported on stderr.
//
// Absolute numbers depend on the host; the shapes (who wins, where the
// crossovers fall) are what EXPERIMENTS.md records against the paper.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"

	"inkfuse"
	"inkfuse/internal/benchkit"
	"inkfuse/internal/tpch"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig9 | table1 | fig10 | ablations | all")
	sf := flag.Float64("sf", 0.05, "scale factor for fig9/table1/ablations")
	sfs := flag.String("sfs", "0.005,0.05,0.5", "comma-separated scale factors for fig10")
	runs := flag.Int("runs", 3, "timing repetitions (median reported)")
	workers := flag.Int("workers", 0, "worker threads (0 = GOMAXPROCS)")
	queries := flag.String("queries", "", "comma-separated query subset (default: all eight)")
	timeout := flag.Duration("timeout", 0, "per-query deadline (e.g. 30s); expired queries fail with a typed error (0 = none)")
	memBudget := flag.Int64("mem-budget", 0, "per-query runtime-state budget in bytes; exceeding it fails the query instead of OOM-ing (0 = unlimited)")
	explain := flag.Bool("explain", false, "EXPLAIN ANALYZE mode: run each -queries query once on -backend and print the annotated plan, then exit")
	sqlFlag := flag.Bool("sql", false, "SQL mode: run each -queries query from its SQL text through the text frontend on -backend, then exit")
	traceFlag := flag.Bool("trace", false, "with -explain: also dump the full per-worker execution trace")
	backend := flag.String("backend", "hybrid", "backend for -explain: vectorized | compiling | rof | hybrid")
	metricsFlag := flag.Bool("metrics", false, "print the engine metrics registry before exiting")
	querylogFlag := flag.Bool("querylog", false, "with -sql or -explain: emit the canonical query-log event (JSON, stderr) for each query run")
	jsonFlag := flag.Bool("json", false, "JSON mode: measure every -queries query on all four backends and write the report to stdout, then exit")
	concurrency := flag.Int("concurrency", 0, "concurrency mode: measure throughput/p99 at doubling client counts up to N through the admission-controlled scheduler (0 = off); standalone or added to -json")
	concRequests := flag.Int("conc-requests", 0, "requests per concurrency level (0 = 4 per client, min 16)")
	concMax := flag.Int("conc-max", 0, "admitted-query cap per level (0 = half the client count)")
	concQueue := flag.Int("conc-queue", 0, "admission queue depth (0 = scheduler default, negative = no queue)")
	concBackend := flag.String("conc-backend", "", "backend for the concurrency series (default vectorized)")
	exchange := flag.String("exchange", "off", "hash-partitioned exchange lowering: off | on | both (both measures every -json cell with and without the exchange)")
	partitions := flag.Int("partitions", 0, "exchange fan-out with -exchange (0 = one partition per worker)")
	flag.Parse()

	switch *exchange {
	case "off", "on", "both":
	default:
		fmt.Fprintf(os.Stderr, "inkbench: -exchange must be off, on or both (got %q)\n", *exchange)
		os.Exit(2)
	}

	cfg := benchkit.Config{SF: *sf, Runs: *runs, Workers: *workers, Timeout: *timeout, MemBudget: *memBudget,
		Exchange: *exchange == "on", Partitions: *partitions}
	if *queries != "" {
		cfg.Queries = strings.Split(*queries, ",")
	}
	cfg = cfg.WithDefaults()

	concCfg := benchkit.ConcConfig{
		Concurrency:   *concurrency,
		Requests:      *concRequests,
		MaxConcurrent: *concMax,
		QueueDepth:    *concQueue,
		Backend:       *concBackend,
	}

	if *jsonFlag {
		rep, err := benchkit.JSONBench(cfg, benchkit.Fig9Systems)
		if err == nil && *exchange == "both" {
			cfgOn := cfg
			cfgOn.Exchange = true
			var repOn *benchkit.JSONReport
			if repOn, err = benchkit.JSONBench(cfgOn, benchkit.Fig9Systems); err == nil {
				rep.Cells = append(rep.Cells, repOn.Cells...)
			}
		}
		if err == nil && *concurrency > 0 {
			rep.Concurrency, err = benchkit.ConcurrentBench(cfg, concCfg)
		}
		if err == nil {
			err = rep.Write(os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "inkbench: json: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *concurrency > 0 {
		fmt.Printf("# Concurrency — throughput and tail latency under concurrent clients (SF %g)\n", cfg.SF)
		cells, err := benchkit.ConcurrentBench(cfg, concCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "inkbench: concurrency: %v\n", err)
			os.Exit(1)
		}
		benchkit.PrintConcurrency(os.Stdout, cells)
		if *metricsFlag {
			fmt.Print(inkfuse.MetricsText())
		}
		return
	}

	var qlog *slog.Logger
	if *querylogFlag {
		qlog = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}

	if *explain {
		if err := explainQueries(cfg, *backend, *traceFlag, qlog); err != nil {
			fmt.Fprintf(os.Stderr, "inkbench: explain: %v\n", err)
			os.Exit(1)
		}
		if *metricsFlag {
			fmt.Print(inkfuse.MetricsText())
		}
		return
	}

	if *sqlFlag {
		if err := sqlQueries(cfg, *backend, qlog); err != nil {
			fmt.Fprintf(os.Stderr, "inkbench: sql: %v\n", err)
			os.Exit(1)
		}
		if *metricsFlag {
			fmt.Print(inkfuse.MetricsText())
		}
		return
	}

	run := func(name string, f func() error) {
		if *exp != name && *exp != "all" {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "inkbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("fig9", func() error {
		fmt.Printf("# Fig 9 — relative throughput vs vectorized backend (SF %g, %d workers)\n", cfg.SF, cfg.Workers)
		rel, cells, err := benchkit.Fig9(cfg)
		if err != nil {
			return err
		}
		benchkit.PrintFig9(os.Stdout, rel, cfg.Queries, benchkit.DegradedCells(cells))
		fmt.Println()
		return nil
	})

	run("table1", func() error {
		fmt.Printf("# Table I — counter proxies, Q1 and Q4 (SF %g)\n", cfg.SF)
		cells, err := benchkit.Table1(cfg)
		if err != nil {
			return err
		}
		benchkit.PrintTable1(os.Stdout, cells)
		fmt.Println()
		return nil
	})

	run("fig10", func() error {
		var factors []float64
		for _, s := range strings.Split(*sfs, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return fmt.Errorf("bad -sfs element %q: %w", s, err)
			}
			factors = append(factors, v)
		}
		fmt.Printf("# Fig 10 — end-to-end latency across systems and scale factors %v\n", factors)
		fmt.Println("# (compile-wait = the dashed bar areas of the paper)")
		cells, err := benchkit.Fig10(cfg, factors)
		if err != nil {
			return err
		}
		benchkit.PrintCells(os.Stdout, cells)
		fmt.Println()
		return nil
	})

	run("ablations", func() error {
		fmt.Printf("# Ablations (SF %g)\n", cfg.SF)
		if rows, err := benchkit.AblationChunkSize(cfg, "q6", []int{64, 256, 1024, 4096, 16384}); err != nil {
			return err
		} else {
			benchkit.PrintAblation(os.Stdout, "vectorized chunk size (q6)", rows)
		}
		if rows, err := benchkit.AblationHybridExploration(cfg, "q1", []int{4, 20, 100}); err != nil {
			return err
		} else {
			benchkit.PrintAblation(os.Stdout, "hybrid exploration period (q1)", rows)
		}
		if rows, err := benchkit.AblationKeyPacking(cfg); err != nil {
			return err
		} else {
			benchkit.PrintAblation(os.Stdout, "key packing shapes (compiling backend)", rows)
		}
		if rows, err := benchkit.AblationROFSplit(cfg, "q3"); err != nil {
			return err
		} else {
			benchkit.PrintAblation(os.Stdout, "pipeline split granularity (q3)", rows)
		}
		if rows, err := benchkit.AblationMorselSize(cfg, "q1", []int{4096, 16384, 65536}); err != nil {
			return err
		} else {
			benchkit.PrintAblation(os.Stdout, "hybrid morsel size (q1)", rows)
		}
		return nil
	})

	if *exp == "all" || *exp == "fig9" {
		cat := tpch.Generate(cfg.SF, 42)
		fmt.Printf("# data: %s\n", benchkit.CatalogRows(cat))
	}
	if *metricsFlag {
		fmt.Println("# engine metrics")
		fmt.Print(inkfuse.MetricsText())
	}
}

// sqlQueries runs each configured query from its SQL text through the text
// frontend — the same execution path inkserve's {"sql": ...} requests take —
// and prints one line per query with the plan-cache fingerprint.
// emitQueryEvent writes the canonical wide event for one completed query —
// the same shape inkserve logs — so bench runs and servers share log tooling.
func emitQueryEvent(logger *slog.Logger, query, source, backend, fingerprint string, res *inkfuse.Result, err error) {
	if logger == nil {
		return
	}
	e := &inkfuse.QueryEvent{
		Query: query, Source: source, Backend: backend, Fingerprint: fingerprint,
		Outcome: "ok",
	}
	if err != nil {
		e.Outcome = "error"
		e.Error = err.Error()
	}
	if res != nil {
		e.ID = res.QueryID
		e.Rows = res.Rows()
		e.Tuples = res.Stats.Tuples
		e.Wall = res.Wall
		e.QueueWait = res.QueueWait
		e.CompileTime = res.Stats.CompileTime
		e.CompileWait = res.Stats.CompileWait
		e.HTLocalHits = res.Stats.HTLocalHits
		e.HTSpills = res.Stats.HTSpills
		e.HTBloomSkips = res.Stats.HTBloomSkips
		e.MorselsCompiled = res.Stats.MorselsCompiled
		e.MorselsVectorized = res.Stats.MorselsVectorized
		e.Degraded = len(res.Warnings) > 0 || res.Stats.CompileErrors > 0
	}
	e.Emit(logger)
}

func sqlQueries(cfg benchkit.Config, backendName string, qlog *slog.Logger) error {
	be, err := inkfuse.ParseBackend(backendName)
	if err != nil {
		return err
	}
	cat := inkfuse.GenerateTPCH(cfg.SF, 42)
	fmt.Printf("# SQL frontend — %s backend, SF %g\n", backendName, cfg.SF)
	for _, q := range cfg.Queries {
		text, ok := inkfuse.TPCHSQL(q)
		if !ok {
			return fmt.Errorf("no SQL text for %q", q)
		}
		stmt, err := inkfuse.CompileSQL(cat, text)
		if err != nil {
			return fmt.Errorf("%s: %w", q, err)
		}
		res, err := inkfuse.RunSQL(cat, text, nil, inkfuse.Options{
			Backend:      be,
			Workers:      cfg.Workers,
			MemoryBudget: cfg.MemBudget,
		})
		emitQueryEvent(qlog, q, "sql", backendName, stmt.Fingerprint.Hex(), res, err)
		if err != nil {
			return fmt.Errorf("%s: %w", q, err)
		}
		fmt.Printf("%-4s  fp=%s  rows=%-6d  wall=%.2fms\n",
			q, stmt.Fingerprint.Hex()[:12], res.Rows(),
			float64(res.Wall.Microseconds())/1000)
	}
	return nil
}

// explainQueries runs each configured query once with tracing enabled and
// prints the EXPLAIN ANALYZE rendering (plus the raw trace with -trace).
func explainQueries(cfg benchkit.Config, backendName string, dumpTrace bool, qlog *slog.Logger) error {
	be, err := inkfuse.ParseBackend(backendName)
	if err != nil {
		return err
	}
	cat := inkfuse.GenerateTPCH(cfg.SF, 42)
	for _, q := range cfg.Queries {
		node, err := inkfuse.TPCHQuery(cat, q)
		if err != nil {
			return err
		}
		lopts := inkfuse.LowerOptions{Exchange: cfg.Exchange, Partitions: cfg.Partitions}
		out, res, err := inkfuse.ExplainAnalyzeOpts(context.Background(), node, q, lopts, inkfuse.Options{
			Backend:      be,
			Workers:      cfg.Workers,
			MemoryBudget: cfg.MemBudget,
		})
		emitQueryEvent(qlog, q, "plan", backendName, "", res, err)
		if out != "" {
			fmt.Print(out)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", q, err)
		}
		for _, w := range res.Warnings {
			fmt.Fprintf(os.Stderr, "inkbench: %s: warning: %v\n", q, w)
		}
		if dumpTrace && res.Trace != nil {
			fmt.Print(res.Trace.Dump())
		}
		fmt.Println()
	}
	return nil
}

// benchdiff compares two inkbench JSON artifacts cell by cell and prints the
// per-query/backend wall-time delta. Cells slower than the baseline by more
// than the regression threshold are flagged, and with -fail the exit status
// reflects them so scripts/bench.sh can gate on trajectory.
//
//	go run ./cmd/benchdiff BENCH_PR4.json BENCH_PR5.json
//	go run ./cmd/benchdiff -threshold 0.10 -fail old.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type cell struct {
	Query    string  `json:"query"`
	Backend  string  `json:"backend"`
	WallMS   float64 `json:"wall_ms"`
	Rows     int64   `json:"rows"`
	Exchange bool    `json:"exchange"`

	HTLocalHits     int64 `json:"ht_local_hits"`
	HTSpills        int64 `json:"ht_spills"`
	HTBloomSkips    int64 `json:"ht_bloom_skips"`
	PartRoutedRows  int64 `json:"part_routed_rows"`
	PartMaxPartRows int64 `json:"part_max_part_rows"`
}

// key identifies a cell across artifacts; the exchange axis is part of the
// identity so on/off cells of the same query/backend never diff against each
// other.
func (c cell) key() string {
	k := c.Query + "/" + c.Backend
	if c.Exchange {
		k += "/exchange"
	}
	return k
}

// counters reports whether the cell carries any behaviour counters worth
// diffing (older artifacts predate them and decode as all-zero).
func (c cell) counters() bool {
	return c.HTLocalHits != 0 || c.HTSpills != 0 || c.HTBloomSkips != 0 || c.PartRoutedRows != 0
}

type report struct {
	SF      float64 `json:"sf"`
	Workers int     `json:"workers"`
	Runs    int     `json:"runs"`
	Cells   []cell  `json:"cells"`
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func main() {
	threshold := flag.Float64("threshold", 0.10, "flag cells slower than baseline by more than this fraction")
	failOnRegress := flag.Bool("fail", false, "exit 1 if any cell regresses past the threshold")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [flags] baseline.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	next, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	if base.SF != next.SF {
		fmt.Printf("note: scale factors differ (baseline SF %g, new SF %g) — deltas are not comparable\n", base.SF, next.SF)
	}
	if base.Workers != next.Workers {
		fmt.Printf("note: worker counts differ (baseline %d, new %d) — wall-time deltas reflect parallelism, not code\n",
			base.Workers, next.Workers)
	}

	old := make(map[string]cell, len(base.Cells))
	for _, c := range base.Cells {
		old[c.key()] = c
	}

	fmt.Printf("%-6s %-15s %10s %10s %9s\n", "query", "backend", "base ms", "new ms", "delta")
	regressions := 0
	anyCounters := false
	for _, c := range next.Cells {
		name := c.Backend
		if c.Exchange {
			name += "+ex"
		}
		b, ok := old[c.key()]
		if !ok {
			fmt.Printf("%-6s %-15s %10s %10.2f %9s\n", c.Query, name, "-", c.WallMS, "new")
			continue
		}
		anyCounters = anyCounters || b.counters() || c.counters()
		delta := c.WallMS/b.WallMS - 1
		mark := ""
		if delta > *threshold {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Printf("%-6s %-15s %10.2f %10.2f %+8.1f%%%s\n", c.Query, name, b.WallMS, c.WallMS, 100*delta, mark)
	}
	if anyCounters {
		fmt.Printf("\ncounter deltas (local_hits/spills/bloom_skips/routed, base -> new):\n")
		for _, c := range next.Cells {
			b, ok := old[c.key()]
			if !ok || (!b.counters() && !c.counters()) {
				continue
			}
			name := c.Backend
			if c.Exchange {
				name += "+ex"
			}
			fmt.Printf("%-6s %-15s %d/%d/%d/%d -> %d/%d/%d/%d\n", c.Query, name,
				b.HTLocalHits, b.HTSpills, b.HTBloomSkips, b.PartRoutedRows,
				c.HTLocalHits, c.HTSpills, c.HTBloomSkips, c.PartRoutedRows)
		}
	}
	if regressions > 0 {
		fmt.Printf("%d cell(s) regressed more than %.0f%%\n", regressions, 100**threshold)
		if *failOnRegress {
			os.Exit(1)
		}
	}
}

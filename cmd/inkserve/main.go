// Command inkserve is the long-running HTTP engine server: it generates a
// TPC-H catalog at startup and serves JSON queries over it, with Prometheus
// metrics on /metrics, health on /healthz and Go profiling on /debug/pprof.
//
// Usage:
//
//	inkserve -addr :8080 -sf 0.1 -backend hybrid -slow 500ms
//
// Query it:
//
//	curl -s localhost:8080/query -d '{"query":"q6","backend":"hybrid"}'
//	curl -s localhost:8080/query -d '{"sql":"select count(*) as n from lineitem where l_quantity < 24"}'
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"inkfuse/internal/flight"
	"inkfuse/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address (use :0 for a random port)")
		sf      = flag.Float64("sf", 0.1, "TPC-H scale factor of the resident catalog")
		seed    = flag.Uint64("seed", 42, "catalog generator seed")
		backend = flag.String("backend", "hybrid", "default execution backend")
		timeout = flag.Duration("timeout", 30*time.Second, "default per-query timeout (0 = none)")
		slow    = flag.Duration("slow", 500*time.Millisecond, "slow-query log threshold (0 = off)")
		maxRows = flag.Int("max-rows", 100, "max result rows inlined into a response")
		jsonLog = flag.Bool("log-json", false, "write the query log as JSON lines")

		logSample = flag.Float64("log-sample", 1,
			"fraction of successful queries kept in the canonical query log (errors, shed, slow and degraded queries always log)")
		spanFile = flag.String("span-file", "",
			"append one OTLP JSON span document per query to this file (enables tracing on every query)")

		engineWorkers = flag.Int("engine-workers", 0, "engine-wide scheduler pool size (0 = max(2, GOMAXPROCS))")
		maxConcurrent = flag.Int("max-concurrent", 0, "max concurrently executing queries (0 = unlimited)")
		queueDepth    = flag.Int("queue-depth", 0, "admission queue bound (0 = default 64, negative = no queue)")
		memLimit      = flag.Int64("mem-limit", 0, "engine-wide cap on admitted queries' memory budgets in bytes (0 = unlimited)")
		drain         = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline for in-flight queries")

		planCache      = flag.Int("plan-cache", 0, "plan/artifact cache entries for SQL queries (0 = default 64, negative = disabled)")
		planCacheBytes = flag.Int64("plan-cache-bytes", 0, "cap on cached compiled-artifact bytes (0 = mem-limit/8 when mem-limit is set, else default)")
		maxPrepared    = flag.Int("max-prepared", 0, "max registered prepared statements (0 = 4096)")

		mutexFraction = flag.Int("mutex-profile-fraction", 0,
			"sample 1/n of mutex contention events into /debug/pprof/mutex (0 = off); use to quantify hash-table shard contention")
		blockRate = flag.Int("block-profile-rate", 0,
			"sample blocking events of >= n ns into /debug/pprof/block (0 = off)")
	)
	flag.Parse()

	// Contention profiling is off by default (it costs a few percent on hot
	// lock paths); flags arm it for A/B runs like the exchange-on/off
	// comparison in DESIGN.md §15.
	if *mutexFraction > 0 {
		runtime.SetMutexProfileFraction(*mutexFraction)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *jsonLog {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	var spanSink *os.File
	if *spanFile != "" {
		var err error
		spanSink, err = os.OpenFile(*spanFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Error("opening span file", "path", *spanFile, "err", err)
			os.Exit(1)
		}
		defer spanSink.Close()
	}

	logger.Info("generating catalog", "sf", *sf, "seed", *seed)
	cfg := serve.Config{
		SF: *sf, Seed: *seed,
		DefaultBackend: *backend,
		DefaultTimeout: *timeout,
		SlowQuery:      *slow,
		MaxRows:        *maxRows,
		EngineWorkers:  *engineWorkers,
		MaxConcurrent:  *maxConcurrent,
		QueueDepth:     *queueDepth,
		MemLimit:       *memLimit,

		PlanCacheEntries: *planCache,
		PlanCacheBytes:   *planCacheBytes,
		MaxPrepared:      *maxPrepared,

		Logger:        logger,
		LogSampleRate: *logSample,
	}
	if *logSample <= 0 {
		// The flag means "drop all plain successes"; the Config zero value
		// means "sampling off", so translate explicitly.
		cfg.LogSampleRate = -1
	}
	if spanSink != nil {
		cfg.SpanSink = spanSink
	}
	srv := serve.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	// The one stdout line scripts parse for the (possibly random) port.
	fmt.Printf("inkserve: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	// SIGQUIT dumps the engine flight recorder to stderr and keeps serving —
	// the "what is the engine doing right now" snapshot for a wedged server.
	// (Registering the handler replaces the runtime's kill-with-stacks
	// default; use SIGABRT for that.)
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)

	var shutdown os.Signal
wait:
	for {
		select {
		case err := <-done:
			logger.Error("server stopped", "err", err)
			os.Exit(1)
		case <-quit:
			fmt.Fprintln(os.Stderr, "inkserve: SIGQUIT flight-recorder dump")
			flight.Default.Dump(os.Stderr)
		case shutdown = <-sig:
			break wait
		}
	}
	logger.Info("shutting down", "signal", shutdown.String(), "drain", *drain)
	// Two-phase graceful shutdown: first drain the engine (admissions
	// stop, new queries get 503 "draining", in-flight queries run until
	// the drain deadline and are then canceled), then close the HTTP side
	// — by then every query handler has returned or is unwinding.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drain)
	cs := srv.Close(drainCtx)
	cancelDrain()
	logger.Info("engine drained",
		"drained", cs.Drained, "canceled", cs.Canceled, "shed", cs.Shed)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		logger.Error("shutdown failed", "err", err)
		os.Exit(1)
	}
}

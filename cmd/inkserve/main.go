// Command inkserve is the long-running HTTP engine server: it generates a
// TPC-H catalog at startup and serves JSON queries over it, with Prometheus
// metrics on /metrics, health on /healthz and Go profiling on /debug/pprof.
//
// Usage:
//
//	inkserve -addr :8080 -sf 0.1 -backend hybrid -slow 500ms
//
// Query it:
//
//	curl -s localhost:8080/query -d '{"query":"q6","backend":"hybrid"}'
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"inkfuse/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address (use :0 for a random port)")
		sf      = flag.Float64("sf", 0.1, "TPC-H scale factor of the resident catalog")
		seed    = flag.Uint64("seed", 42, "catalog generator seed")
		backend = flag.String("backend", "hybrid", "default execution backend")
		timeout = flag.Duration("timeout", 30*time.Second, "default per-query timeout (0 = none)")
		slow    = flag.Duration("slow", 500*time.Millisecond, "slow-query log threshold (0 = off)")
		maxRows = flag.Int("max-rows", 100, "max result rows inlined into a response")
		jsonLog = flag.Bool("log-json", false, "write the query log as JSON lines")
	)
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *jsonLog {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	logger.Info("generating catalog", "sf", *sf, "seed", *seed)
	srv := serve.New(serve.Config{
		SF: *sf, Seed: *seed,
		DefaultBackend: *backend,
		DefaultTimeout: *timeout,
		SlowQuery:      *slow,
		MaxRows:        *maxRows,
		Logger:         logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	// The one stdout line scripts parse for the (possibly random) port.
	fmt.Printf("inkserve: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		logger.Error("server stopped", "err", err)
		os.Exit(1)
	case s := <-sig:
		logger.Info("shutting down", "signal", s.String())
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			logger.Error("shutdown failed", "err", err)
			os.Exit(1)
		}
	}
}

// Command inklint runs the engine's static-analysis suite (internal/lint):
// hotpath, backendcomplete, typederr, and lockscope. It is wired into
// scripts/check.sh as a tier-1 gate.
//
// Usage:
//
//	inklint [-run hotpath,typederr] [patterns ...]
//
// Patterns are module-relative package patterns ("./...", "./internal/vm",
// "./internal/rt/..."); the default is the whole module. Exit status is 1
// when any diagnostic is reported, 2 on load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"inkfuse/internal/lint"
)

func main() {
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: inklint [flags] [package patterns]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		analyzers = lint.ByName(strings.Split(*run, ","))
		if analyzers == nil {
			fmt.Fprintf(os.Stderr, "inklint: unknown analyzer in -run=%s\n", *run)
			os.Exit(2)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "inklint: %v\n", err)
		os.Exit(2)
	}
	prog, err := lint.Load(lint.LoadConfig{Dir: wd, Patterns: flag.Args()})
	if err != nil {
		fmt.Fprintf(os.Stderr, "inklint: %v\n", err)
		os.Exit(2)
	}

	diags := lint.RunAnalyzers(prog, analyzers)
	for _, d := range diags {
		fname := d.Pos.Filename
		if rel, err := filepath.Rel(wd, fname); err == nil && !strings.HasPrefix(rel, "..") {
			fname = rel
		}
		fmt.Printf("%s:%d:%d: %s(%s): %s\n", fname, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Category, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "inklint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

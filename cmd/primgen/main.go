// Command primgen materializes the engine's generated vectorized
// interpreter: it enumerates every suboperator instantiation, runs each
// through the compilation stack wrapped between a tuple-buffer source and
// sink, and emits the resulting primitives as C source — the artifact
// InkFuse compiles at build time (the paper reports 20 suboperators → 800+
// primitives → ~20k lines of generated C; run `primgen -stats` for this
// implementation's numbers).
//
//	primgen -stats          # counts only
//	primgen > interp.c      # the full generated interpreter
//	primgen -id cmp_lt_f64_ck   # one primitive
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"inkfuse/internal/core"
	"inkfuse/internal/interp"
	"inkfuse/internal/ir"
)

func main() {
	statsOnly := flag.Bool("stats", false, "print enumeration statistics only")
	one := flag.String("id", "", "emit a single primitive by ID")
	lang := flag.String("lang", "c", "emit language: c | go")
	flag.Parse()

	render := ir.EmitC
	if *lang == "go" {
		render = ir.EmitGo
	}

	reg, err := interp.NewRegistry()
	if err != nil {
		fmt.Fprintln(os.Stderr, "primgen:", err)
		os.Exit(1)
	}
	ids := reg.IDs()
	sort.Strings(ids)

	if *one != "" {
		f, ok := reg.Func(*one)
		if !ok {
			fmt.Fprintf(os.Stderr, "primgen: no primitive %q\n", *one)
			os.Exit(1)
		}
		fmt.Print(render(f))
		return
	}

	if *statsOnly {
		families := map[string]int{}
		lines := 0
		for _, id := range ids {
			fam := id
			if i := strings.IndexByte(id, '_'); i > 0 {
				fam = id[:i]
			}
			families[fam]++
			f, _ := reg.Func(id)
			lines += strings.Count(ir.EmitC(f), "\n")
		}
		famNames := make([]string, 0, len(families))
		for f := range families {
			famNames = append(famNames, f)
		}
		sort.Strings(famNames)
		fmt.Printf("suboperator families: %d\n", len(famNames))
		fmt.Printf("suboperator prototypes enumerated: %d\n", len(core.Enumerate()))
		fmt.Printf("generated vectorized primitives: %d\n", reg.Len())
		fmt.Printf("generated interpreter size: %d lines of C\n", lines)
		for _, f := range famNames {
			fmt.Printf("  %-12s %4d primitives\n", f, families[f])
		}
		return
	}

	src, err := reg.GenerateSource(*lang)
	if err != nil {
		fmt.Fprintln(os.Stderr, "primgen:", err)
		os.Exit(1)
	}
	fmt.Print(src)
}

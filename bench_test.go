package inkfuse

// Benchmarks regenerating the paper's evaluation (§VII). One bench family
// per table/figure:
//
//	BenchmarkFig9/...    — relative throughput of the four backends per query
//	BenchmarkTable1/...  — Q1/Q4 counter-proxy runs (vectorized vs compiling)
//	BenchmarkFig10/...   — cross-system end-to-end latency incl. compile wait
//	BenchmarkAblation... — design-choice ablations from DESIGN.md
//	BenchmarkPrimitives  — startup generation of the vectorized interpreter
//
// Scale with INKFUSE_BENCH_SF (default 0.01 so `go test -bench=.` stays
// fast); cmd/inkbench runs the full sweeps and prints the paper-style
// tables.

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"inkfuse/internal/algebra"
	"inkfuse/internal/benchkit"
	"inkfuse/internal/exec"
	"inkfuse/internal/interp"
	"inkfuse/internal/storage"
	"inkfuse/internal/tpch"
	"inkfuse/internal/volcano"
)

func benchSF() float64 {
	if s := os.Getenv("INKFUSE_BENCH_SF"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			return v
		}
	}
	return 0.01
}

var benchCat = sync.OnceValue(func() *storage.Catalog {
	return tpch.Generate(benchSF(), 42)
})

func runQuery(b *testing.B, cat *storage.Catalog, q string, sys benchkit.System) {
	b.Helper()
	cell, err := benchkit.RunOnce(cat, q, sys, benchkit.Config{})
	if err != nil {
		b.Fatal(err)
	}
	if cell.Rows == 0 {
		b.Fatalf("%s/%s returned no rows", q, sys.Name)
	}
}

// BenchmarkFig9 regenerates Fig 9: every query on every InkFuse backend.
// Relative throughput = vectorized time / backend time (compile wait
// excluded, as at the paper's SF 100 it is fully amortized).
func BenchmarkFig9(b *testing.B) {
	cat := benchCat()
	for _, q := range tpch.Queries {
		for _, sys := range benchkit.Fig9Systems {
			b.Run(q+"/"+sys.Name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runQuery(b, cat, q, sys)
				}
			})
		}
	}
}

// BenchmarkTable1 regenerates Table I's measurement runs: Q1 and Q4 on the
// vectorized and compiling backends (counter proxies are printed by
// `inkbench -exp table1`).
func BenchmarkTable1(b *testing.B) {
	cat := benchCat()
	for _, q := range []string{"q1", "q4"} {
		for _, sys := range []benchkit.System{
			{Name: "vectorized", Backend: exec.BackendVectorized},
			{Name: "compiling", Backend: exec.BackendCompiling, Latency: exec.LatencyC},
		} {
			b.Run(q+"/"+sys.Name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runQuery(b, cat, q, sys)
				}
			})
		}
	}
}

// BenchmarkFig10 regenerates Fig 10's per-cell measurements: the
// cross-system lineup (Volcano baseline, vectorized "DuckDB-class", the
// Umbra stand-ins, and the InkFuse backends) with cold compiles.
func BenchmarkFig10(b *testing.B) {
	cat := benchCat()
	for _, q := range tpch.Queries {
		for _, sys := range benchkit.Fig10Systems {
			b.Run(q+"/"+sys.Name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runQuery(b, cat, q, sys)
				}
			})
		}
	}
}

// BenchmarkVolcanoExpr pins the baseline gap the paper motivates with:
// tuple-at-a-time interpretation vs the vectorized interpreter on Q6.
func BenchmarkVolcanoExpr(b *testing.B) {
	cat := benchCat()
	node, err := tpch.Build(cat, "q6")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("volcano", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := volcano.Run(node); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("vectorized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan, err := algebra.Lower(node, "q6")
			if err != nil {
				b.Fatal(err)
			}
			lat := exec.LatencyNone
			if _, err := exec.Execute(plan, exec.Options{Backend: exec.BackendVectorized, Latency: &lat}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationChunkSize sweeps the tuple-buffer size (DESIGN.md §4).
func BenchmarkAblationChunkSize(b *testing.B) {
	cat := benchCat()
	node, err := tpch.Build(cat, "q6")
	if err != nil {
		b.Fatal(err)
	}
	for _, cs := range []int{64, 256, 1024, 4096, 16384} {
		b.Run(strconv.Itoa(cs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				plan, err := algebra.Lower(node, "q6")
				if err != nil {
					b.Fatal(err)
				}
				lat := exec.LatencyNone
				if _, err := exec.Execute(plan, exec.Options{
					Backend: exec.BackendVectorized, ChunkSize: cs, Latency: &lat,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationKeyPacking contrasts key shapes for the packed row
// layout (paper §IV-D).
func BenchmarkAblationKeyPacking(b *testing.B) {
	cat := benchCat()
	li := cat.MustGet("lineitem")
	shapes := []struct {
		name string
		keys []string
	}{
		{"single_int", []string{"l_suppkey"}},
		{"compound_int", []string{"l_suppkey", "l_partkey"}},
		{"strings", []string{"l_returnflag", "l_linestatus"}},
	}
	for _, sh := range shapes {
		b.Run(sh.name, func(b *testing.B) {
			cols := append(append([]string{}, sh.keys...), "l_quantity")
			node := algebra.NewGroupBy(algebra.NewScan(li, cols...), sh.keys,
				algebra.Sum("l_quantity", "s"))
			for i := 0; i < b.N; i++ {
				plan, err := algebra.Lower(node, "pack")
				if err != nil {
					b.Fatal(err)
				}
				lat := exec.LatencyNone
				if _, err := exec.Execute(plan, exec.Options{Backend: exec.BackendCompiling, Latency: &lat}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationROFSplit contrasts split granularities on the join-heavy
// Q3 (none / at probes / everywhere).
func BenchmarkAblationROFSplit(b *testing.B) {
	cat := benchCat()
	for _, sys := range []benchkit.System{
		{Name: "none_compiling", Backend: exec.BackendCompiling, Latency: exec.LatencyNone},
		{Name: "probes_rof", Backend: exec.BackendROF, Latency: exec.LatencyNone},
		{Name: "everywhere_vectorized", Backend: exec.BackendVectorized},
	} {
		b.Run(sys.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runQuery(b, cat, "q3", sys)
			}
		})
	}
}

// BenchmarkPrimitives measures generating the complete vectorized
// interpreter (the engine-startup cost the paper trades against per-query
// compilation).
func BenchmarkPrimitives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reg, err := interp.NewRegistry()
		if err != nil {
			b.Fatal(err)
		}
		if reg.Len() == 0 {
			b.Fatal("empty registry")
		}
	}
}

// BenchmarkTPCHGen measures the data generator.
func BenchmarkTPCHGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tpch.Generate(0.005, uint64(i+1))
	}
}

// Package inkfuse is a Go implementation of Incremental Fusion — the query
// execution paradigm of Wagner et al., "Incremental Fusion: Unifying
// Compiled and Vectorized Query Execution" (ICDE 2024) — modeled on the
// paper's open-source prototype engine InkFuse.
//
// The engine lowers relational plans into a suboperator IR whose
// instantiations are finite (the enumeration invariant). One compilation
// stack serves two purposes: fusing whole pipelines into specialized
// programs (the compiling backend), and generating — ahead of time, from the
// enumerated suboperators — a complete vectorized interpreter (the
// vectorized backend). A hybrid backend starts queries on the interpreter,
// compiles in the background, and routes morsels to whichever backend
// measures the highest tuple throughput; an ROF backend stages pipelines
// before hash-table probes with a prefetch step.
//
// Quick start:
//
//	cat := inkfuse.NewCatalog()
//	cat.Add(myTable)
//	plan := inkfuse.NewGroupBy(inkfuse.NewScan(myTable, "k", "v"),
//	    []string{"k"}, inkfuse.Sum("v", "total"))
//	res, err := inkfuse.Run(plan, "totals", inkfuse.Options{Backend: inkfuse.BackendHybrid})
package inkfuse

import (
	"context"

	"inkfuse/internal/algebra"
	"inkfuse/internal/core"
	"inkfuse/internal/exec"
	"inkfuse/internal/interp"
	"inkfuse/internal/ir"
	"inkfuse/internal/metrics"
	"inkfuse/internal/obs"
	"inkfuse/internal/sql"
	"inkfuse/internal/storage"
	"inkfuse/internal/tpch"
	"inkfuse/internal/volcano"
)

// Run lowers a relational plan into suboperator pipelines and executes it.
func Run(node Node, name string, opts Options) (*Result, error) {
	return RunContext(context.Background(), node, name, opts)
}

// RunContext is Run under a context: cancellation and deadlines stop the
// query at morsel granularity and the returned error wraps ErrCanceled or
// ErrDeadlineExceeded. Combine with Options.MemoryBudget for fully bounded
// queries:
//
//	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
//	defer cancel()
//	res, err := inkfuse.RunContext(ctx, plan, "q", inkfuse.Options{
//	    Backend:      inkfuse.BackendHybrid,
//	    MemoryBudget: 256 << 20, // fail (not OOM) past 256 MiB of query state
//	})
func RunContext(ctx context.Context, node Node, name string, opts Options) (*Result, error) {
	plan, err := algebra.Lower(node, name)
	if err != nil {
		return nil, err
	}
	return exec.ExecuteContext(ctx, plan, opts)
}

// Lower exposes the plan lowering step (relational algebra → suboperator
// pipelines) for callers that want to inspect or re-execute plans.
func Lower(node Node, name string) (*Plan, error) {
	return algebra.Lower(node, name)
}

// LowerOptions configures lowering. Exchange routes aggregation and join
// builds through a local hash-partitioned exchange with private per-partition
// tables (DESIGN.md §15); Partitions sets the fan-out (0 = GOMAXPROCS).
type LowerOptions = algebra.LowerOptions

// LowerOpts is Lower with explicit LowerOptions.
func LowerOpts(node Node, name string, opts LowerOptions) (*Plan, error) {
	return algebra.LowerOpts(node, name, opts)
}

// Execute runs an already-lowered plan. Note that a lowered plan owns its
// runtime state (hash tables); re-executing the same *Plan is not supported —
// lower again instead.
func Execute(plan *Plan, opts Options) (*Result, error) {
	return exec.Execute(plan, opts)
}

// ExecuteContext is Execute under a context (see RunContext).
func ExecuteContext(ctx context.Context, plan *Plan, opts Options) (*Result, error) {
	return exec.ExecuteContext(ctx, plan, opts)
}

// RunVolcano executes the plan on the tuple-at-a-time Volcano reference
// engine (baseline and correctness oracle).
func RunVolcano(node Node) (*Chunk, error) {
	return volcano.Run(node)
}

// GenerateTPCH builds the TPC-H-style benchmark catalog at a scale factor
// (SF 1 ≈ 6M lineitem rows). Deterministic in (sf, seed).
func GenerateTPCH(sf float64, seed uint64) *Catalog {
	return tpch.Generate(sf, seed)
}

// TPCHQuery returns the hand-built physical plan for one of the eight
// supported TPC-H queries ("q1", "q3", "q4", "q5", "q6", "q13", "q14",
// "q19").
func TPCHQuery(cat *Catalog, name string) (Node, error) {
	return tpch.Build(cat, name)
}

// TPCHQueries lists the supported query names.
func TPCHQueries() []string {
	return append([]string{}, tpch.Queries...)
}

// TPCHSQL returns the SQL text of one of the supported TPC-H queries —
// the same plans TPCHQuery hand-builds, expressed for the text frontend.
func TPCHSQL(name string) (string, bool) {
	text, ok := tpch.SQL[name]
	return text, ok
}

// CompileSQL parses and binds a SELECT statement against a catalog. The
// returned statement carries the relational tree, the output column names,
// and the parameter-invariant fingerprint under which repeated executions of
// the same query shape share cached plans. Literals are auto-parameterized;
// explicit ? placeholders are filled positionally at execution time.
// Failures are *SQLParseError or *SQLBindError, both carrying a source
// Position (see SQLErrorPosition).
func CompileSQL(cat *Catalog, text string) (*SQLStatement, error) {
	return sql.Compile(cat, text)
}

// RunSQL compiles and executes a SQL SELECT in one call:
//
//	res, err := inkfuse.RunSQL(cat,
//	    "select count(*) as n from lineitem where l_quantity < ?",
//	    []any{24.0}, inkfuse.Options{Backend: inkfuse.BackendHybrid})
//
// params fills the statement's ? placeholders in text order (nil when the
// text has none). Callers that execute a shape repeatedly should keep the
// CompileSQL statement and a plancache instead.
func RunSQL(cat *Catalog, text string, params []any, opts Options) (*Result, error) {
	stmt, err := sql.Compile(cat, text)
	if err != nil {
		return nil, err
	}
	plan, pm, err := algebra.LowerWithParams(stmt.Root, stmt.Name)
	if err != nil {
		return nil, err
	}
	if err := stmt.BindArgs(pm, params); err != nil {
		return nil, err
	}
	return exec.Execute(plan, opts)
}

// GeneratedC renders the C source the engine's compilation stack generates
// for every pipeline of the plan — the code an InkFuse-style engine hands to
// clang (paper Figs 3, 5, 6).
func GeneratedC(node Node, name string) (string, error) {
	plan, err := algebra.Lower(node, name)
	if err != nil {
		return "", err
	}
	out := ""
	for _, pipe := range plan.Pipelines {
		fn, _, err := pipe.GenFused()
		if err != nil {
			return "", err
		}
		out += ir.EmitC(fn) + "\n"
	}
	return out, nil
}

// Explain lowers a plan and renders its suboperator pipelines (paper Fig 7
// style): per pipeline the source, the suboperator DAG with the primitive
// each suboperator resolves to, and the sink.
func Explain(node Node, name string) (string, error) {
	plan, err := algebra.Lower(node, name)
	if err != nil {
		return "", err
	}
	return plan.Describe(), nil
}

// ExplainAnalyze lowers and EXECUTES the plan with tracing enabled, then
// renders the suboperator pipelines annotated with the measured execution
// numbers: morsel counts, per-worker busy-time distribution, compile timing,
// the hybrid backend's routing split and EWMA throughput estimates, and
// finalization time. Works on every backend. The executed Result (with
// Result.Trace attached) is returned alongside the rendering; on failure the
// rendering covers the partial trace and the error is returned too.
func ExplainAnalyze(node Node, name string, opts Options) (string, *Result, error) {
	return ExplainAnalyzeContext(context.Background(), node, name, opts)
}

// ExplainAnalyzeContext is ExplainAnalyze under a context (see RunContext).
func ExplainAnalyzeContext(ctx context.Context, node Node, name string, opts Options) (string, *Result, error) {
	return ExplainAnalyzeOpts(ctx, node, name, LowerOptions{}, opts)
}

// ExplainAnalyzeOpts is ExplainAnalyzeContext with lowering options — e.g.
// the hash-partitioned exchange (DESIGN.md §15), whose routed-row counts and
// per-partition skew factor appear in the rendering.
func ExplainAnalyzeOpts(ctx context.Context, node Node, name string, lopts LowerOptions, opts Options) (string, *Result, error) {
	plan, err := algebra.LowerOpts(node, name, lopts)
	if err != nil {
		return "", nil, err
	}
	return exec.ExplainAnalyze(ctx, plan, opts)
}

// MetricsText renders the engine-wide metrics registry (queries started /
// succeeded / failed / canceled, tuples, panics recovered, compile errors,
// memory peaks, ...) as "name value" lines. The same registry is exported
// via expvar under the key "inkfuse" for any HTTP server that mounts
// /debug/vars. Metrics are fed once per query at query end — they cost the
// hot path nothing.
func MetricsText() string {
	return metrics.Default.Dump()
}

// MetricsSnapshot returns a point-in-time copy of the engine-wide metrics.
func MetricsSnapshot() MetricsValues {
	return metrics.Default.Snapshot()
}

// PrometheusText renders the engine's observability state — the flat metrics
// registry plus the latency/throughput histogram families (per-backend query
// latency, morsel latency, rows/sec) — in the Prometheus text exposition
// format. cmd/inkserve serves this at /metrics; embedders can mount it on
// their own handler:
//
//	http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
//	    io.WriteString(w, inkfuse.PrometheusText())
//	})
func PrometheusText() string {
	return obs.Default.PrometheusText()
}

// ObsSummaryText renders the histogram families as human-readable
// count/p50/p90/p99 lines — the terminal-friendly view of PrometheusText.
func ObsSummaryText() string {
	return obs.Default.SummaryText()
}

// PrimitiveCount reports how many vectorized primitives the engine generates
// at startup from the suboperator enumeration (paper §V-A reports 800+ for
// InkFuse's 20 suboperators; EXPERIMENTS.md records ours).
func PrimitiveCount() (int, error) {
	reg, err := interp.Default()
	if err != nil {
		return 0, err
	}
	return reg.Len(), nil
}

// SubOperatorCount reports the number of distinct suboperator families in
// the enumeration.
func SubOperatorCount() int {
	seen := map[string]bool{}
	for _, op := range core.Enumerate() {
		seen[opFamily(op.PrimitiveID())] = true
	}
	return len(seen)
}

func opFamily(id string) string {
	for i := 0; i < len(id); i++ {
		if id[i] == '_' {
			return id[:i]
		}
	}
	return id
}

// Morsels re-exports the morsel splitter for custom schedulers.
func Morsels(rows, size int) []storage.Morsel { return storage.Morsels(rows, size) }

#!/usr/bin/env bash
# bench.sh — run the committed benchmark grid: every supported TPC-H query on
# all four backends, median-of-N wall time and rows/sec as JSON.
#
#   scripts/bench.sh [out.json]      # default out: BENCH_PR4.json
#   SF=0.05 RUNS=5 scripts/bench.sh  # override scale factor / repetitions
#
# Absolute numbers are host-dependent; the committed artifact records the
# shape (who wins per query, compile-wait share) for trend comparison.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR4.json}"
sf="${SF:-0.1}"
runs="${RUNS:-3}"

echo "bench: SF ${sf}, ${runs} runs/cell, 8 queries x 4 backends" >&2
go run ./cmd/inkbench -json -sf "$sf" -runs "$runs" > "$out"
echo "bench: wrote $out" >&2

#!/usr/bin/env bash
# bench.sh — run the committed benchmark grid: every supported TPC-H query on
# all four backends, median-of-N wall time and rows/sec as JSON.
#
#   scripts/bench.sh [out.json]      # default out: BENCH_PR10.json
#   SF=0.05 RUNS=5 scripts/bench.sh  # override scale factor / repetitions
#   CONC=8 scripts/bench.sh          # top client count of the concurrency series
#   WORKERS=4 scripts/bench.sh       # worker threads per query (0 = GOMAXPROCS)
#   EXCHANGE=off scripts/bench.sh    # drop the exchange A/B axis (off | on | both)
#   BASE=BENCH_PR6.json scripts/bench.sh  # override the delta baseline
#
# Absolute numbers are host-dependent; the committed artifact records the
# shape (who wins per query, compile-wait share, how p99 grows with client
# count) for trend comparison. After the run the per-query/backend delta
# against the previous PR's artifact is printed, flagging any cell >10%
# slower.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR10.json}"
sf="${SF:-0.1}"
runs="${RUNS:-3}"
conc="${CONC:-8}"
workers="${WORKERS:-4}"
exchange="${EXCHANGE:-both}"
base="${BASE:-BENCH_PR6.json}"

echo "bench: SF ${sf}, ${runs} runs/cell, 8 queries x 4 backends, exchange=${exchange}, ${workers} workers, concurrency series up to ${conc} clients" >&2
go run ./cmd/inkbench -json -sf "$sf" -runs "$runs" -workers "$workers" \
    -exchange "$exchange" -concurrency "$conc" -conc-queue 2 > "$out"
echo "bench: wrote $out" >&2

if [ -f "$base" ] && [ "$base" != "$out" ]; then
    echo "bench: delta vs $base (>10% slower flagged)" >&2
    go run ./cmd/benchdiff -threshold 0.10 "$base" "$out"
fi

#!/usr/bin/env bash
# Tier-1 verify: format, build, vet, race-test the whole module.
# Recorded in ROADMAP.md; run before every commit.
set -euo pipefail
cd "$(dirname "$0")/.."

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt: files need formatting:" >&2
    echo "$fmt" >&2
    exit 1
fi

go build ./...
go vet ./...

# inklint: the engine-invariant analyzers (hotpath allocation discipline,
# backend dispatch/enumeration completeness, typed boundary errors, shard-lock
# scope). Diagnostics print as file:line:col and fail the gate verbatim.
echo "inklint..."
go run ./cmd/inklint ./...
echo "inklint OK"

go test -race ./...

# Tied-key ordering depends on parallel scheduling; hammer the determinism
# tests a few extra times so a flaky tie-break cannot slip through one run.
for _ in 1 2 3; do
    go test -count=1 -run Determinism -race ./internal/exec/
done

# Differential fuzz seeds (batched vs scalar table kernels) under the race
# detector: the batched paths take shard locks once per chunk, so any ordering
# bug shows up here first.
go test -count=1 -race -run 'Fuzz(AggBatch|JoinBatch)' ./internal/rt/

# Benchmark smoke: one iteration of the morsel-loop and table-kernel benches
# so a compile error or panic in benchmark-only code cannot land unnoticed.
echo "bench smoke..."
go test -run XXX -bench MorselLoop -benchtime 1x ./internal/exec/ >/dev/null
go test -run XXX -bench 'AggBuild|JoinProbe' -benchtime 1x ./internal/rt/ >/dev/null
echo "bench smoke OK"

# Alloc guard: the morsel loop must stay allocation-free per chunk with the
# flight recorder on (the observability layer's zero-cost contract).
echo "alloc guard..."
go test -count=1 -run 'MorselLoopZeroAllocs|RecordNoAllocs' ./internal/exec/ ./internal/flight/ >/dev/null
echo "alloc guard OK"

# inkserve smoke test: start the server on a random port with a tiny catalog,
# run one query over HTTP, and assert the /metrics exposition advanced (query
# counter and per-backend latency histogram).
echo "inkserve smoke test..."
go build -o /tmp/inkserve-smoke ./cmd/inkserve
/tmp/inkserve-smoke -addr 127.0.0.1:0 -sf 0.01 >/tmp/inkserve-smoke.out 2>/tmp/inkserve-smoke.log &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's|^inkserve: listening on http://||p' /tmp/inkserve-smoke.out)
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "inkserve did not come up" >&2
    cat /tmp/inkserve-smoke.log >&2
    exit 1
fi
body=$(curl -sf "http://$addr/query" -d '{"query":"q6","backend":"vectorized"}')
echo "$body" | grep -q '"rows"' || { echo "query response malformed: $body" >&2; exit 1; }
metrics=$(curl -sf "http://$addr/metrics")
echo "$metrics" | grep -q '^inkfuse_queries_succeeded [1-9]' \
    || { echo "/metrics query counter did not advance" >&2; exit 1; }
echo "$metrics" | grep -q 'inkfuse_query_seconds_bucket{backend="vectorized",le="+Inf"} [1-9]' \
    || { echo "/metrics latency histogram did not advance" >&2; exit 1; }

# SQL path: prepare a parameterized statement, execute it twice with
# different parameter values, and assert the second run hit the plan cache
# (the /metrics plancache hit counter must be nonzero).
prep=$(curl -sf "http://$addr/prepare" \
    -d '{"sql":"select count(*) as n from lineitem where l_quantity < ?"}')
handle=$(echo "$prep" | sed -n 's/.*"handle": *"\([^"]*\)".*/\1/p')
[ -n "$handle" ] || { echo "prepare response malformed: $prep" >&2; exit 1; }
body=$(curl -sf "http://$addr/query" -d '{"prepared":"'"$handle"'","params":[30]}')
echo "$body" | grep -q '"plan_cache": *"miss"' \
    || { echo "first prepared execution should miss the plan cache: $body" >&2; exit 1; }
body=$(curl -sf "http://$addr/query" -d '{"prepared":"'"$handle"'","params":[11]}')
echo "$body" | grep -q '"plan_cache": *"hit"' \
    || { echo "second prepared execution should hit the plan cache: $body" >&2; exit 1; }
# Fetch the exposition once into a variable: piping curl straight into
# `grep -q` races pipefail (grep exits on match, curl fails on the closed
# pipe).
metrics=$(curl -sf "http://$addr/metrics")
echo "$metrics" | grep -q '^inkfuse_plancache_hits [1-9]' \
    || { echo "/metrics plancache hit counter did not advance" >&2; exit 1; }

# Prometheus text-format lint: every exposition line must be a comment or a
# well-formed `name{labels} value` sample (histogram buckets included), and
# the histogram families must carry TYPE metadata.
bad=$(echo "$metrics" | grep -vE '^# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$' \
    | grep -vE '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?$' \
    | grep -vE '^$' || true)
if [ -n "$bad" ]; then
    echo "/metrics lines fail the Prometheus text-format lint:" >&2
    echo "$bad" >&2
    exit 1
fi
echo "$metrics" | grep -q '^# TYPE inkfuse_query_seconds histogram$' \
    || { echo "/metrics histogram family missing TYPE metadata" >&2; exit 1; }

# Flight recorder smoke: the ring must have recorded the queries above, and
# SIGQUIT must dump it to stderr without killing the server or an in-flight
# query.
flight=$(curl -sf "http://$addr/debug/flight")
echo "$flight" | grep -q '^flight recorder: [1-9]' \
    || { echo "/debug/flight returned no events: $flight" >&2; exit 1; }
echo "$flight" | grep -q 'query_done' \
    || { echo "/debug/flight missing query lifecycle events" >&2; exit 1; }
: > /tmp/inkserve-smoke.quitcode
curl -s -o /dev/null -w '%{http_code}\n' --max-time 30 "http://$addr/query" \
    -d '{"query":"q1","backend":"vectorized"}' > /tmp/inkserve-smoke.quitcode &
quit_curl=$!
kill -QUIT "$serve_pid"
wait "$quit_curl"
grep -q '^200$' /tmp/inkserve-smoke.quitcode \
    || { echo "query concurrent with SIGQUIT failed: $(cat /tmp/inkserve-smoke.quitcode)" >&2; exit 1; }
kill -0 "$serve_pid" 2>/dev/null \
    || { echo "SIGQUIT killed inkserve" >&2; exit 1; }
for _ in $(seq 1 50); do
    grep -q 'flight recorder:' /tmp/inkserve-smoke.log && break
    sleep 0.1
done
grep -q 'flight recorder:' /tmp/inkserve-smoke.log \
    || { echo "SIGQUIT did not dump the flight recorder" >&2; cat /tmp/inkserve-smoke.log >&2; exit 1; }
curl -sf "http://$addr/healthz" >/dev/null \
    || { echo "inkserve unhealthy after SIGQUIT dump" >&2; exit 1; }

kill "$serve_pid"
trap - EXIT
echo "inkserve smoke test OK"

# Bounded parser fuzz: a few hundred mutations over the corpus seeds — the
# frontend must never panic and every failure must carry a source position.
echo "parser fuzz smoke..."
go test -run XXX -fuzz FuzzParseSQL -fuzztime 300x ./internal/sql/ >/dev/null
echo "parser fuzz smoke OK"

# Concurrent-load smoke: an admission-controlled server under 16 parallel
# clients must answer every request with 200 (served), 429 (shed) or 504
# (deadline) — never 500, never a hang — and shut down cleanly within the
# drain deadline on SIGTERM, logging the drain outcome.
echo "inkserve concurrent-load smoke..."
/tmp/inkserve-smoke -addr 127.0.0.1:0 -sf 0.01 -backend vectorized \
    -max-concurrent 2 -queue-depth 2 -drain 5s \
    >/tmp/inkserve-conc.out 2>/tmp/inkserve-conc.log &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's|^inkserve: listening on http://||p' /tmp/inkserve-conc.out)
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "inkserve (concurrent smoke) did not come up" >&2
    cat /tmp/inkserve-conc.log >&2
    exit 1
fi
: > /tmp/inkserve-conc.codes
curl_pids=()
for _ in $(seq 1 16); do
    curl -s -o /dev/null -w '%{http_code}\n' --max-time 30 \
        "http://$addr/query" -d '{"query":"q1","backend":"vectorized"}' \
        >> /tmp/inkserve-conc.codes &
    curl_pids+=("$!")
done
wait "${curl_pids[@]}"
if [ "$(wc -l < /tmp/inkserve-conc.codes)" -ne 16 ]; then
    echo "concurrent smoke: not all 16 requests completed" >&2
    cat /tmp/inkserve-conc.codes >&2
    exit 1
fi
if grep -qvE '^(200|429|504)$' /tmp/inkserve-conc.codes; then
    echo "concurrent smoke: unexpected status under load:" >&2
    sort /tmp/inkserve-conc.codes | uniq -c >&2
    exit 1
fi
grep -q '^200$' /tmp/inkserve-conc.codes \
    || { echo "concurrent smoke: no request succeeded" >&2; exit 1; }
kill -TERM "$serve_pid"
for _ in $(seq 1 100); do
    kill -0 "$serve_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$serve_pid" 2>/dev/null; then
    echo "concurrent smoke: inkserve did not exit within the drain deadline" >&2
    kill -9 "$serve_pid" 2>/dev/null || true
    exit 1
fi
wait "$serve_pid" 2>/dev/null || true
trap - EXIT
grep -q 'engine drained' /tmp/inkserve-conc.log \
    || { echo "concurrent smoke: drain log line missing" >&2; cat /tmp/inkserve-conc.log >&2; exit 1; }
echo "inkserve concurrent-load smoke OK"

# Exchange smoke: concurrent agg/join-heavy queries lowered with the
# hash-partitioned exchange through the admission-controlled scheduler. Every
# build table must be partitioned single-writer, so the engine-wide spill
# counter has to stay at zero while rows do get routed through partitions
# (DESIGN.md §15 — the "no shared hash-table writes" invariant, end to end).
echo "exchange smoke..."
exout=$(go run ./cmd/inkbench -concurrency 4 -conc-requests 16 \
    -exchange on -queries q1,q3,q5 -sf 0.01 -metrics)
echo "$exout" | grep -q '^inkfuse_part_routed_rows_total [1-9]' \
    || { echo "exchange smoke: no rows were routed through the exchange" >&2; echo "$exout" >&2; exit 1; }
echo "$exout" | grep -q '^inkfuse_ht_spills_total 0$' \
    || { echo "exchange smoke: partitioned builds must never spill to shared tables" >&2; echo "$exout" >&2; exit 1; }
echo "exchange smoke OK"

#!/usr/bin/env bash
# Tier-1 verify: format, build, vet, race-test the whole module.
# Recorded in ROADMAP.md; run before every commit.
set -euo pipefail
cd "$(dirname "$0")/.."

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt: files need formatting:" >&2
    echo "$fmt" >&2
    exit 1
fi

go build ./...
go vet ./...
go test -race ./...

# Tied-key ordering depends on parallel scheduling; hammer the determinism
# tests a few extra times so a flaky tie-break cannot slip through one run.
for _ in 1 2 3; do
    go test -count=1 -run Determinism -race ./internal/exec/
done

package inkfuse

import (
	"strings"
	"testing"
)

// Tests of the public facade: everything an application can reach.

func exampleTable() *Table {
	t := NewTable("sales", Schema{
		{Name: "region", Kind: String},
		{Name: "amount", Kind: Float64},
		{Name: "day", Kind: Date},
	})
	for i := 0; i < 3000; i++ {
		t.AppendRow([]string{"n", "s", "e"}[i%3], float64(i%100), MkDate(1995, 1, 1+i%30))
	}
	return t
}

func TestPublicAPIRoundtrip(t *testing.T) {
	tbl := exampleTable()
	cat := NewCatalog()
	cat.Add(tbl)
	plan := NewOrderBy(
		NewGroupBy(
			NewFilter(NewScan(tbl, "region", "amount", "day"),
				And(Gt(Col("amount"), F64(10)),
					Lt(Col("day"), DateLit("1995-01-20")))),
			[]string{"region"},
			Sum("amount", "total"), Count("n"), Avg("amount", "avg")),
		[]string{"total"}, []bool{true}, 0)

	oracle, err := RunVolcano(plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []Backend{BackendVectorized, BackendCompiling, BackendROF, BackendHybrid} {
		lat := LatencyNone
		res, err := Run(plan, "api", Options{Backend: backend, Latency: &lat})
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		if res.Rows() != oracle.Rows() {
			t.Fatalf("%v: %d rows vs oracle %d", backend, res.Rows(), oracle.Rows())
		}
		if len(res.Cols) != 4 || res.Cols[1] != "total" {
			t.Fatalf("column names: %v", res.Cols)
		}
		for i := 0; i < res.Rows(); i++ {
			if res.Chunk.Row(i)[0] != oracle.Row(i)[0] {
				t.Fatalf("%v: row %d key mismatch", backend, i)
			}
		}
	}
}

func TestLowerThenExecute(t *testing.T) {
	tbl := exampleTable()
	node := NewGroupBy(NewScan(tbl, "amount"), nil, Sum("amount", "s"))
	plan, err := Lower(node, "sep")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(plan, Options{Backend: BackendVectorized})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != 1 {
		t.Fatalf("rows = %d", res.Rows())
	}
}

func TestTPCHEndToEnd(t *testing.T) {
	cat := GenerateTPCH(0.001, 7)
	if len(TPCHQueries()) != 8 {
		t.Fatalf("queries = %d", len(TPCHQueries()))
	}
	for _, q := range TPCHQueries() {
		node, err := TPCHQuery(cat, q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(node, q, Options{Backend: BackendHybrid})
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if res.Rows() == 0 {
			t.Fatalf("%s: empty result", q)
		}
	}
	if _, err := TPCHQuery(cat, "q2"); err == nil {
		t.Fatal("q2 is not supported and must error")
	}
}

func TestGeneratedCArtifact(t *testing.T) {
	tbl := exampleTable()
	node := NewProject(NewMap(NewScan(tbl, "amount"),
		NamedExpr{As: "y", E: Add(Col("amount"), F64(42))}), "y")
	c, err := GeneratedC(node, "fig5")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"void pipeline_", "ink_const_t", "for (int64_t i"} {
		if !strings.Contains(c, want) {
			t.Fatalf("generated C missing %q:\n%s", want, c)
		}
	}
}

func TestPrimitiveAndSubOperatorCounts(t *testing.T) {
	n, err := PrimitiveCount()
	if err != nil {
		t.Fatal(err)
	}
	if n < 150 {
		t.Fatalf("primitives = %d", n)
	}
	if fams := SubOperatorCount(); fams < 18 || fams > 40 {
		t.Fatalf("suboperator families = %d", fams)
	}
}

func TestExplain(t *testing.T) {
	cat := GenerateTPCH(0.001, 7)
	node, err := TPCHQuery(cat, "q3")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Explain(node, "q3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"pipeline p0", "scan customer", "joininsert",
		"joinprobe_inner", "agglookup", "sink: result", "order by",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("explain missing %q:\n%s", want, s)
		}
	}
}

func TestDateHelpers(t *testing.T) {
	d := MkDate(1998, 9, 2)
	if DateString(d) != "1998-09-02" {
		t.Fatal("date helpers broken")
	}
}

func TestMorselsExport(t *testing.T) {
	if len(Morsels(100, 40)) != 3 {
		t.Fatal("morsels export broken")
	}
}
